//! Query kernels: the distance- and lower-bound family a search runs
//! under.
//!
//! The exact-search engine is generic over this trait so that Euclidean
//! 1-NN/k-NN and the DTW extension (Section 4) share the RS-batch /
//! priority-queue machinery. A kernel must guarantee the *soundness
//! chain*:
//!
//! `node_lb_sq(word) <= series_lb_sq(sax(S)) <= distance_sq(S)` for every
//! series `S` summarized by `word` — that chain is exactly what makes
//! pruning exact.
//!
//! Both shipped kernels precompute a per-query
//! [`MindistTable`](crate::sax::MindistTable) at construction, so every
//! lower bound on the hot path is `w` table lookups plus adds instead of
//! breakpoint and segment-bound arithmetic, and blocks of candidates can
//! be bounded in one tight pass ([`QueryKernel::lb_block_sq`]).

use crate::layout::LeafLayout;
use crate::sax::{IsaxWord, MindistTable};
use crate::tree::{RootSoa, RootSubtree};

/// The distance family of a query (see module docs for the contract).
pub trait QueryKernel: Sync {
    /// Lower bound (squared) from the query to any series in `word`'s
    /// region.
    fn node_lb_sq(&self, word: &IsaxWord) -> f64;

    /// Lower bound (squared) from the query to a series with
    /// full-cardinality SAX word `sax`.
    fn series_lb_sq(&self, sax: &[u8]) -> f64;

    /// Lower bounds for a contiguous block of full-cardinality SAX words
    /// (`segments` bytes per candidate, `out.len()` candidates) — the
    /// batched pruning pass over a leaf's scan-contiguous summary block.
    /// Each `out[j]` must equal `series_lb_sq` of the `j`-th word; the
    /// default implementation delegates, table-backed kernels override
    /// with a branch-free loop.
    fn lb_block_sq(&self, sax_block: &[u8], segments: usize, out: &mut [f64]) {
        debug_assert_eq!(sax_block.len(), out.len() * segments);
        for (slot, word) in out.iter_mut().zip(sax_block.chunks_exact(segments)) {
            *slot = self.series_lb_sq(word);
        }
    }

    /// [`QueryKernel::lb_block_sq`] addressed by layout position: lower
    /// bounds for the contiguous scan-position `range` (one leaf),
    /// `out.len() == range.len()`. The default reads the interleaved
    /// (AoS) SAX block; table-backed kernels override with the
    /// segment-major SoA sweep so the SIMD gather kernel applies. Every
    /// `out[j]` must stay bit-identical to `series_lb_sq` of position
    /// `range.start + j`.
    fn lb_block_at(&self, layout: &LeafLayout, range: std::ops::Range<usize>, out: &mut [f64]) {
        self.lb_block_sq(layout.sax_block(range), layout.segments(), out);
    }

    /// Node-level lower bounds for a contiguous range of forest roots
    /// (`out.len() == range.len()`). Each `out[k]` must equal
    /// `node_lb_sq` of root `range.start + k`'s word; the default
    /// delegates per root, table-backed kernels override with the
    /// batched sweep over the segment-major root planes so the SIMD
    /// clamp-and-gather kernel applies.
    fn root_lb_block(
        &self,
        forest: &[RootSubtree],
        _roots: &RootSoa,
        range: std::ops::Range<usize>,
        out: &mut [f64],
    ) {
        debug_assert_eq!(range.len(), out.len());
        for (slot, tree) in out.iter_mut().zip(&forest[range]) {
            *slot = self.node_lb_sq(tree.node.word());
        }
    }

    /// Real (squared) distance to `candidate`, early-abandoning past
    /// `threshold_sq` (return `None` when the candidate cannot win).
    fn distance_sq(&self, candidate: &[f32], threshold_sq: f64) -> Option<f64>;
}

/// The Euclidean-distance kernel (the paper's primary setting).
///
/// Construction folds the query PAA, the breakpoints, and the segment
/// weights into a [`MindistTable`]; `node_lb_sq` and `series_lb_sq` are
/// bit-identical to [`crate::sax::mindist_paa_isax_sq`] and
/// [`crate::sax::mindist_paa_sax_sq`] (asserted by property tests).
#[derive(Debug)]
pub struct EdKernel<'q> {
    query: &'q [f32],
    qpaa: Vec<f64>,
    table: MindistTable,
}

impl<'q> EdKernel<'q> {
    /// Builds the kernel for `query` under `segments` iSAX segments.
    pub fn new(query: &'q [f32], segments: usize) -> Self {
        let qpaa = crate::paa::paa(query, segments);
        let table = MindistTable::from_paa(&qpaa, query.len());
        EdKernel { query, qpaa, table }
    }

    /// The query's PAA (used by the approximate search).
    pub fn qpaa(&self) -> &[f64] {
        &self.qpaa
    }

    /// The raw query.
    pub fn query(&self) -> &[f32] {
        self.query
    }

    /// The per-query mindist table (shared with the approximate search
    /// so the seed lookup reuses the kernel's precomputation).
    pub fn table(&self) -> &MindistTable {
        &self.table
    }
}

impl QueryKernel for EdKernel<'_> {
    #[inline]
    fn node_lb_sq(&self, word: &IsaxWord) -> f64 {
        self.table.word_lb_sq(word)
    }

    #[inline]
    fn series_lb_sq(&self, sax: &[u8]) -> f64 {
        self.table.series_lb_sq(sax)
    }

    #[inline]
    fn lb_block_sq(&self, sax_block: &[u8], segments: usize, out: &mut [f64]) {
        debug_assert_eq!(segments, self.table.segments());
        self.table.block_lb_sq(sax_block, out);
    }

    #[inline]
    fn lb_block_at(&self, layout: &LeafLayout, range: std::ops::Range<usize>, out: &mut [f64]) {
        self.table.block_lb_sq_soa(&layout.sax_soa_view(range), out);
    }

    #[inline]
    fn root_lb_block(
        &self,
        _forest: &[RootSubtree],
        roots: &RootSoa,
        range: std::ops::Range<usize>,
        out: &mut [f64],
    ) {
        self.table.root_lb_block(roots, range, out);
    }

    #[inline]
    fn distance_sq(&self, candidate: &[f32], threshold_sq: f64) -> Option<f64> {
        crate::distance::euclidean_sq_early_abandon(self.query, candidate, threshold_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sax::{mindist_paa_isax_sq, mindist_paa_sax_sq, sax_word_into};
    use crate::series::znormalize;

    fn pseudo_series(seed: u64, len: usize) -> Vec<f32> {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut out = Vec::with_capacity(len);
        let mut acc = 0.0f32;
        for _ in 0..len {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc += ((x % 2000) as f32 / 1000.0) - 1.0;
            out.push(acc);
        }
        znormalize(&mut out);
        out
    }

    #[test]
    fn ed_kernel_soundness_chain() {
        let len = 96;
        let segs = 8;
        let q = pseudo_series(11, len);
        let kernel = EdKernel::new(&q, segs);
        for seed in 0..10u64 {
            let s = pseudo_series(seed + 500, len);
            let spaa = crate::paa::paa(&s, segs);
            let mut sax = vec![0u8; segs];
            sax_word_into(&spaa, &mut sax);
            let real = kernel
                .distance_sq(&s, f64::INFINITY)
                .expect("no threshold");
            let series_lb = kernel.series_lb_sq(&sax);
            assert!(series_lb <= real + 1e-6);
            for bits in 1..=8u8 {
                let word = IsaxWord::from_sax(&sax, bits);
                let node_lb = kernel.node_lb_sq(&word);
                assert!(node_lb <= series_lb + 1e-9, "bits={bits}");
            }
        }
    }

    #[test]
    fn ed_kernel_bit_identical_to_reference_mindist() {
        let len = 96;
        let segs = 8;
        let q = pseudo_series(41, len);
        let kernel = EdKernel::new(&q, segs);
        for seed in 0..10u64 {
            let s = pseudo_series(seed + 900, len);
            let mut sax = vec![0u8; segs];
            sax_word_into(&crate::paa::paa(&s, segs), &mut sax);
            let want = mindist_paa_sax_sq(kernel.qpaa(), &sax, len);
            assert_eq!(kernel.series_lb_sq(&sax).to_bits(), want.to_bits());
            for bits in 1..=8u8 {
                let word = IsaxWord::from_sax(&sax, bits);
                let want = mindist_paa_isax_sq(kernel.qpaa(), &word, len);
                assert_eq!(kernel.node_lb_sq(&word).to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn ed_kernel_block_bounds_match_scalar_path() {
        let len = 64;
        let segs = 8;
        let q = pseudo_series(7, len);
        let kernel = EdKernel::new(&q, segs);
        let mut block = Vec::new();
        let mut want = Vec::new();
        for seed in 0..16u64 {
            let s = pseudo_series(seed + 300, len);
            let mut sax = vec![0u8; segs];
            sax_word_into(&crate::paa::paa(&s, segs), &mut sax);
            want.push(kernel.series_lb_sq(&sax));
            block.extend_from_slice(&sax);
        }
        let mut got = vec![0.0f64; want.len()];
        kernel.lb_block_sq(&block, segs, &mut got);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn ed_kernel_early_abandons() {
        let q = pseudo_series(1, 64);
        let far: Vec<f32> = q.iter().map(|v| v + 100.0).collect();
        let kernel = EdKernel::new(&q, 8);
        assert!(kernel.distance_sq(&far, 1.0).is_none());
        assert_eq!(kernel.distance_sq(&q, 1.0), Some(0.0));
    }
}
