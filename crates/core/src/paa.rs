//! Piecewise Aggregate Approximation (PAA).
//!
//! PAA splits the x-axis of a series into `segments` equal parts and
//! represents each part by its mean (Figure 1b of the paper). It is the
//! intermediate step between a raw series and its iSAX summary, and the
//! query side of every `mindist` lower-bound computation.

/// Segment boundaries for a series of length `n` split into `w` segments.
///
/// Segment `i` covers `[start(i), start(i+1))` with
/// `start(i) = i * n / w`, which distributes a non-divisible remainder as
/// evenly as possible (some segments get one extra point).
#[inline]
pub fn segment_bounds(n: usize, w: usize, i: usize) -> (usize, usize) {
    (i * n / w, (i + 1) * n / w)
}

/// Computes the PAA of `series` into `out` (`out.len()` = segment count).
///
/// # Panics
/// Panics if `out.len() == 0` or `out.len() > series.len()`.
pub fn paa_into(series: &[f32], out: &mut [f64]) {
    let n = series.len();
    let w = out.len();
    assert!(w > 0, "PAA needs at least one segment");
    assert!(w <= n, "more segments ({w}) than points ({n})");
    for (i, slot) in out.iter_mut().enumerate() {
        let (s, e) = segment_bounds(n, w, i);
        let sum: f64 = series[s..e].iter().map(|&v| v as f64).sum();
        *slot = sum / (e - s) as f64;
    }
}

/// Allocating convenience wrapper around [`paa_into`].
pub fn paa(series: &[f32], segments: usize) -> Vec<f64> {
    let mut out = vec![0.0; segments];
    paa_into(series, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_cover_series_exactly() {
        for n in [16usize, 17, 100, 256] {
            for w in [1usize, 3, 8, 16] {
                if w > n {
                    continue;
                }
                let mut covered = 0;
                for i in 0..w {
                    let (s, e) = segment_bounds(n, w, i);
                    assert_eq!(s, covered, "n={n} w={w} i={i}");
                    assert!(e > s, "empty segment n={n} w={w} i={i}");
                    covered = e;
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn paa_of_constant_is_constant() {
        let s = vec![2.5f32; 32];
        assert!(paa(&s, 8).iter().all(|&v| (v - 2.5).abs() < 1e-12));
    }

    #[test]
    fn paa_exact_on_divisible_segments() {
        let s: Vec<f32> = vec![1.0, 3.0, 5.0, 7.0, 2.0, 2.0, 4.0, 4.0];
        let p = paa(&s, 4);
        assert_eq!(p, vec![2.0, 6.0, 2.0, 4.0]);
    }

    #[test]
    fn paa_single_segment_is_mean() {
        let s: Vec<f32> = (1..=5).map(|v| v as f32).collect();
        assert_eq!(paa(&s, 1), vec![3.0]);
    }

    #[test]
    fn paa_full_resolution_is_identity() {
        let s: Vec<f32> = vec![1.0, -2.0, 0.5];
        let p = paa(&s, 3);
        assert_eq!(p, vec![1.0, -2.0, 0.5]);
    }

    #[test]
    fn paa_preserves_mean() {
        // Mean weighted by segment lengths equals the series mean.
        let s: Vec<f32> = (0..37).map(|i| (i as f32 * 0.7).sin()).collect();
        let w = 7;
        let p = paa(&s, w);
        let mut weighted = 0.0f64;
        for (i, &pi) in p.iter().enumerate() {
            let (a, b) = segment_bounds(s.len(), w, i);
            weighted += pi * (b - a) as f64;
        }
        let mean: f64 = s.iter().map(|&v| v as f64).sum();
        assert!((weighted - mean).abs() < 1e-9);
    }
}
