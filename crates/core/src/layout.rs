//! The leaf-contiguous **scan layout**: raw series and SAX words stored
//! in leaf order.
//!
//! The queue-processing phase of the engine drains leaves: for every
//! candidate it reads the series' SAX word (pruning) and, for
//! survivors, its raw values (real distance). With leaves holding id
//! lists into dataset-ordered storage, both reads scatter across the
//! whole collection. This module stores the collection *permuted* so
//! that each leaf's series — and their SAX words — are contiguous:
//! draining a leaf is two sequential streams, and the batched
//! lower-bound pass (`QueryKernel::lb_block_sq`) runs over one dense
//! byte block.
//!
//! # The permutation / id-mapping contract
//!
//! * A **scan position** `p ∈ [0, num_series)` is a slot in this
//!   layout; each tree leaf owns one contiguous range of positions
//!   ([`crate::tree::LeafSlice`]), and the slices of all leaves
//!   partition the position space.
//! * [`LeafLayout::original_id`] maps a position to the series'
//!   **original id** (its row in the dataset the index was built from).
//!   Everything user-visible — answers, `Summaries::sax(id)`, cluster
//!   id-maps — speaks original ids; scan positions never escape the
//!   index internals.
//! * The permutation is **deterministic**: it depends only on the data
//!   (buffer order, then left-to-right leaf order, then dataset order
//!   within each leaf). Replication-group nodes building the same chunk
//!   therefore produce bit-identical layouts, which is what lets the
//!   work-stealing protocol exchange RS-batch ids instead of data.

use crate::buffers::Summaries;
use crate::series::DatasetBuffer;
use std::sync::Arc;

/// Scan-ordered storage of one indexed collection: raw series, SAX
/// words, and the position/id mappings (see module docs for the
/// contract).
#[derive(Debug, Clone)]
pub struct LeafLayout {
    /// Raw series, one per scan position (leaf-contiguous order).
    data: DatasetBuffer,
    /// Full-cardinality SAX words, `segments` bytes per scan position.
    sax: Arc<[u8]>,
    /// Segment-major (SoA) transpose of `sax`: byte
    /// `sax_soa[i * num_series + p]` is segment `i` of position `p`, so
    /// any leaf's position range is `segments` *contiguous* byte runs —
    /// the shape the 8-way SIMD mindist sweep consumes. Built once at
    /// assembly (both the build and the ODY2 load path go through
    /// [`LeafLayout::from_scan_parts`]); never persisted.
    sax_soa: Arc<[u8]>,
    /// `scan_to_id[p]` = original id of the series at position `p`.
    scan_to_id: Arc<[u32]>,
    /// `id_to_scan[id]` = scan position of original id `id`.
    id_to_scan: Arc<[u32]>,
    segments: usize,
}

/// A borrowed window of the segment-major SAX transpose covering one
/// contiguous scan-position range: candidate `j`'s segment-`i` byte is
/// `soa[i * stride + offset + j]`. Produced by
/// [`LeafLayout::sax_soa_view`], consumed by
/// [`crate::sax::MindistTable::block_lb_sq_soa`].
#[derive(Debug, Clone, Copy)]
pub struct SaxSoaView<'a> {
    pub(crate) soa: &'a [u8],
    pub(crate) stride: usize,
    pub(crate) offset: usize,
    pub(crate) len: usize,
    pub(crate) segments: usize,
}

impl SaxSoaView<'_> {
    /// Number of candidates (scan positions) in the window.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of segments per SAX word.
    #[inline]
    pub fn segments(&self) -> usize {
        self.segments
    }
}

impl LeafLayout {
    /// Materializes the layout from a dataset-ordered collection, its
    /// summaries, and the scan permutation produced by
    /// [`crate::tree::build_forest`].
    ///
    /// Peak memory is transiently ~2× the raw data: the gather
    /// allocates the permuted copy before the caller drops the
    /// dataset-ordered original. Steady state holds exactly one copy.
    ///
    /// # Panics
    /// Panics if `scan_to_id` is not a permutation of
    /// `0..data.num_series()` or the shapes disagree.
    pub fn build(data: &DatasetBuffer, summaries: &Summaries, scan_to_id: Vec<u32>) -> Self {
        let scan_data = data.gather(&scan_to_id);
        let mut sax = Vec::with_capacity(scan_to_id.len() * summaries.segments());
        for &id in &scan_to_id {
            sax.extend_from_slice(summaries.sax(id));
        }
        Self::from_scan_parts(scan_data, sax, scan_to_id, summaries.segments())
    }

    /// Assembles the layout from *already scan-ordered* parts (the
    /// persistence path): `scan_data.series(p)` and the `p`-th SAX word
    /// of `scan_sax` must belong to the series whose original id is
    /// `scan_to_id[p]`.
    ///
    /// # Panics
    /// Panics if `scan_to_id` is not a permutation of
    /// `0..scan_data.num_series()` or the shapes disagree.
    pub fn from_scan_parts(
        scan_data: DatasetBuffer,
        scan_sax: Vec<u8>,
        scan_to_id: Vec<u32>,
        segments: usize,
    ) -> Self {
        let n = scan_data.num_series();
        assert_eq!(scan_to_id.len(), n, "permutation length mismatch");
        assert_eq!(scan_sax.len(), n * segments, "SAX block length mismatch");
        let mut id_to_scan = vec![u32::MAX; n];
        for (p, &id) in scan_to_id.iter().enumerate() {
            assert!((id as usize) < n, "id {id} out of range");
            assert_eq!(
                id_to_scan[id as usize],
                u32::MAX,
                "id {id} appears twice in the scan permutation"
            );
            id_to_scan[id as usize] = p as u32;
        }
        let mut sax_soa = vec![0u8; n * segments];
        for (p, word) in scan_sax.chunks_exact(segments).enumerate() {
            for (i, &sym) in word.iter().enumerate() {
                sax_soa[i * n + p] = sym;
            }
        }
        LeafLayout {
            data: scan_data,
            sax: scan_sax.into(),
            sax_soa: sax_soa.into(),
            scan_to_id: scan_to_id.into(),
            id_to_scan: id_to_scan.into(),
            segments,
        }
    }

    /// The scan-ordered raw data (position-indexed, **not** id-indexed).
    #[inline]
    pub fn data(&self) -> &DatasetBuffer {
        &self.data
    }

    /// Raw values of the series at scan position `p`.
    #[inline]
    pub fn series(&self, p: usize) -> &[f32] {
        self.data.series(p)
    }

    /// Raw values of the series with original id `id`.
    #[inline]
    pub fn series_by_id(&self, id: u32) -> &[f32] {
        self.data.series(self.id_to_scan[id as usize] as usize)
    }

    /// SAX word of the series at scan position `p`.
    #[inline]
    pub fn sax(&self, p: usize) -> &[u8] {
        &self.sax[p * self.segments..(p + 1) * self.segments]
    }

    /// The dense SAX byte block of a contiguous position range (one
    /// leaf's summaries, for the batched lower-bound pass).
    #[inline]
    pub fn sax_block(&self, range: std::ops::Range<usize>) -> &[u8] {
        &self.sax[range.start * self.segments..range.end * self.segments]
    }

    /// The segment-major (SoA) window of a contiguous position range —
    /// the layout the SIMD mindist sweep gathers from.
    #[inline]
    pub fn sax_soa_view(&self, range: std::ops::Range<usize>) -> SaxSoaView<'_> {
        debug_assert!(range.end <= self.num_series());
        SaxSoaView {
            soa: &self.sax_soa,
            stride: self.num_series(),
            offset: range.start,
            len: range.len(),
            segments: self.segments,
        }
    }

    /// The full segment-major transpose (test-only diagnostics).
    #[cfg(test)]
    pub(crate) fn sax_soa_bytes(&self) -> &[u8] {
        &self.sax_soa
    }

    /// Original id of the series at scan position `p`.
    #[inline]
    pub fn original_id(&self, p: usize) -> u32 {
        self.scan_to_id[p]
    }

    /// Scan position of the series with original id `id`.
    #[inline]
    pub fn scan_pos(&self, id: u32) -> usize {
        self.id_to_scan[id as usize] as usize
    }

    /// The full position-to-id permutation.
    #[inline]
    pub fn scan_to_id(&self) -> &[u32] {
        &self.scan_to_id
    }

    /// Number of segments per SAX word.
    #[inline]
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Number of series in the layout.
    #[inline]
    pub fn num_series(&self) -> usize {
        self.data.num_series()
    }

    /// Index-overhead bytes of the layout: the scan-ordered SAX copy,
    /// its segment-major transpose, plus both id mappings (the raw
    /// values are the collection itself, not overhead — they exist in
    /// exactly one copy).
    pub fn size_bytes(&self) -> usize {
        self.sax.len() + self.sax_soa.len() + (self.scan_to_id.len() + self.id_to_scan.len()) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (DatasetBuffer, Summaries) {
        let data = DatasetBuffer::from_vec(
            vec![
                0.0, 1.0, //
                2.0, 3.0, //
                4.0, 5.0, //
                6.0, 7.0,
            ],
            2,
        );
        let summaries = Summaries::compute(&data, 2, 1);
        (data, summaries)
    }

    #[test]
    fn build_permutes_data_and_sax_consistently() {
        let (data, summaries) = tiny();
        let layout = LeafLayout::build(&data, &summaries, vec![2, 0, 3, 1]);
        assert_eq!(layout.num_series(), 4);
        for p in 0..4 {
            let id = layout.original_id(p);
            assert_eq!(layout.series(p), data.series(id as usize));
            assert_eq!(layout.sax(p), summaries.sax(id));
            assert_eq!(layout.scan_pos(id), p);
            assert_eq!(layout.series_by_id(id), data.series(id as usize));
        }
        assert_eq!(
            layout.sax_block(1..3).len(),
            2 * layout.segments(),
            "block spans two positions"
        );
        assert!(layout.size_bytes() > 0);
    }

    #[test]
    fn soa_transpose_matches_aos_words() {
        let (data, summaries) = tiny();
        let layout = LeafLayout::build(&data, &summaries, vec![2, 0, 3, 1]);
        let n = layout.num_series();
        let soa = layout.sax_soa_bytes();
        assert_eq!(soa.len(), n * layout.segments());
        for p in 0..n {
            for (i, &sym) in layout.sax(p).iter().enumerate() {
                assert_eq!(soa[i * n + p], sym, "p={p} seg={i}");
            }
        }
        let view = layout.sax_soa_view(1..3);
        assert_eq!(view.len(), 2);
        assert!(!view.is_empty());
        assert_eq!(view.segments(), layout.segments());
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn rejects_duplicate_ids() {
        let (data, summaries) = tiny();
        LeafLayout::build(&data, &summaries, vec![0, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_ids() {
        let (data, summaries) = tiny();
        LeafLayout::build(&data, &summaries, vec![0, 1, 2, 9]);
    }
}
