//! SAX / iSAX summarization (Shieh & Keogh 2008; Figure 1 of the paper).
//!
//! The y-axis is split into regions whose boundaries (*breakpoints*) are
//! quantiles of the standard normal distribution, so that z-normalized
//! series fall into all regions with equal probability. A symbol is a
//! region index; an **iSAX word** attaches a per-segment *cardinality*
//! (number of bits), which is what makes the hierarchical index tree
//! possible: splitting a node refines one segment by one bit.
//!
//! We fix the maximum cardinality at `2^8 = 256` regions (the standard
//! choice in the iSAX literature and the MESSI code base). Because the
//! quantiles for cardinality `2^b` are a subset of those for `2^8`, the
//! symbol at `b` bits is exactly the top `b` bits of the 8-bit symbol —
//! this *nesting* property is relied on throughout.

use std::sync::OnceLock;

/// Maximum per-segment cardinality in bits.
pub const MAX_CARD_BITS: u8 = 8;
/// Maximum number of regions per segment (`2^MAX_CARD_BITS`).
pub const MAX_CARD: usize = 1 << MAX_CARD_BITS;

/// Inverse CDF of the standard normal distribution
/// (Acklam's rational approximation, |relative error| < 1.15e-9).
fn inv_norm_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The 255 breakpoints splitting the real line into 256 equiprobable
/// regions under N(0,1). `breakpoints()[j]` is the `(j+1)/256` quantile.
pub fn breakpoints() -> &'static [f64; MAX_CARD - 1] {
    static BP: OnceLock<[f64; MAX_CARD - 1]> = OnceLock::new();
    BP.get_or_init(|| {
        let mut bp = [0.0f64; MAX_CARD - 1];
        for (j, slot) in bp.iter_mut().enumerate() {
            *slot = inv_norm_cdf((j + 1) as f64 / MAX_CARD as f64);
        }
        bp
    })
}

/// SAX symbol of a PAA value at maximum cardinality (8 bits):
/// the number of breakpoints strictly below `v`, i.e. region index 0..=255.
#[inline]
pub fn sax_symbol(v: f64) -> u8 {
    let bp = breakpoints();
    // Binary search: first index where bp[idx] >= v; that index is the
    // count of breakpoints < v, hence the region.
    bp.partition_point(|&b| b < v) as u8
}

/// Computes the full-cardinality SAX word of a PAA vector into `out`.
pub fn sax_word_into(paa: &[f64], out: &mut [u8]) {
    debug_assert_eq!(paa.len(), out.len());
    for (slot, &v) in out.iter_mut().zip(paa) {
        *slot = sax_symbol(v);
    }
}

/// An iSAX word: per-segment symbols with per-segment cardinalities.
///
/// `symbols[i]` holds the *top* `card_bits[i]` bits of the full 8-bit
/// symbol, right-aligned (so a 1-bit symbol is `0` or `1`). A cardinality
/// of 0 denotes the whole real line (used only by a root placeholder).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IsaxWord {
    /// Right-aligned symbol prefixes, one per segment.
    pub symbols: Vec<u8>,
    /// Bits of cardinality per segment, each `<= MAX_CARD_BITS`.
    pub card_bits: Vec<u8>,
}

impl IsaxWord {
    /// The word of a full-cardinality SAX word truncated to `bits` bits on
    /// every segment.
    pub fn from_sax(sax: &[u8], bits: u8) -> Self {
        assert!(bits <= MAX_CARD_BITS);
        let symbols = sax.iter().map(|&s| s >> (MAX_CARD_BITS - bits)).collect();
        IsaxWord {
            symbols,
            card_bits: vec![bits; sax.len()],
        }
    }

    /// Number of segments.
    #[inline]
    pub fn segments(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the full-cardinality SAX word `sax` falls inside the region
    /// this word describes (i.e. every segment's top bits match).
    pub fn contains(&self, sax: &[u8]) -> bool {
        debug_assert_eq!(sax.len(), self.symbols.len());
        self.symbols
            .iter()
            .zip(&self.card_bits)
            .zip(sax)
            .all(|((&sym, &bits), &full)| bits == 0 || (full >> (MAX_CARD_BITS - bits)) == sym)
    }

    /// Child word obtained by refining segment `seg` with next bit `bit`
    /// (the iSAX split operation).
    ///
    /// # Panics
    /// Panics if the segment is already at maximum cardinality.
    pub fn refine(&self, seg: usize, bit: u8) -> IsaxWord {
        assert!(bit <= 1);
        assert!(
            self.card_bits[seg] < MAX_CARD_BITS,
            "segment {seg} already at max cardinality"
        );
        let mut w = self.clone();
        w.symbols[seg] = (w.symbols[seg] << 1) | bit;
        w.card_bits[seg] += 1;
        w
    }

    /// The `[lo, hi]` symbol range (at full cardinality) covered by
    /// segment `seg` of this word.
    #[inline]
    pub fn full_range(&self, seg: usize) -> (usize, usize) {
        let bits = self.card_bits[seg];
        if bits == 0 {
            return (0, MAX_CARD - 1);
        }
        let shift = (MAX_CARD_BITS - bits) as usize;
        let lo = (self.symbols[seg] as usize) << shift;
        (lo, lo + (1usize << shift) - 1)
    }
}

/// Squared `mindist` lower bound between a query PAA vector and an iSAX
/// word describing a region of series space.
///
/// For each segment, if the PAA value lies outside the word's region
/// `[beta_lo, beta_hi]`, the gap (squared, weighted by the segment's point
/// count) is accrued. The result lower-bounds the squared Euclidean
/// distance between the query and *any* series summarized by the word —
/// the pruning test of the whole index.
///
/// `series_len` is the raw series length `n`; segment weights follow the
/// same uneven split as [`crate::paa::segment_bounds`].
pub fn mindist_paa_isax_sq(paa: &[f64], word: &IsaxWord, series_len: usize) -> f64 {
    debug_assert_eq!(paa.len(), word.segments());
    let bp = breakpoints();
    let w = paa.len();
    let mut sum = 0.0f64;
    for (i, &v) in paa.iter().enumerate() {
        let (lo_sym, hi_sym) = word.full_range(i);
        let lo = if lo_sym == 0 {
            f64::NEG_INFINITY
        } else {
            bp[lo_sym - 1]
        };
        let hi = if hi_sym == MAX_CARD - 1 {
            f64::INFINITY
        } else {
            bp[hi_sym]
        };
        let d = if v < lo {
            lo - v
        } else if v > hi {
            v - hi
        } else {
            0.0
        };
        let (s, e) = crate::paa::segment_bounds(series_len, w, i);
        sum += d * d * (e - s) as f64;
    }
    sum
}

/// Squared `mindist` between a query PAA and a *full-cardinality* SAX word
/// (the per-candidate-series lower bound used when draining priority
/// queues). Equivalent to [`mindist_paa_isax_sq`] at 8 bits but avoids
/// building an [`IsaxWord`].
pub fn mindist_paa_sax_sq(paa: &[f64], sax: &[u8], series_len: usize) -> f64 {
    debug_assert_eq!(paa.len(), sax.len());
    let bp = breakpoints();
    let w = paa.len();
    let mut sum = 0.0f64;
    for i in 0..w {
        let sym = sax[i] as usize;
        let lo = if sym == 0 {
            f64::NEG_INFINITY
        } else {
            bp[sym - 1]
        };
        let hi = if sym == MAX_CARD - 1 {
            f64::INFINITY
        } else {
            bp[sym]
        };
        let v = paa[i];
        let d = if v < lo {
            lo - v
        } else if v > hi {
            v - hi
        } else {
            0.0
        };
        let (s, e) = crate::paa::segment_bounds(series_len, w, i);
        sum += d * d * (e - s) as f64;
    }
    sum
}

/// Per-query `mindist` lookup table: the query-time hot path of the
/// engine.
///
/// [`mindist_paa_sax_sq`] recomputes breakpoints, segment bounds, and
/// gap arithmetic for *every candidate series*. A query, however, is
/// fixed for the whole search, so all of that folds into a
/// `segments × 256` table built once at kernel construction:
/// entry `(i, sym)` is the squared, length-weighted gap contribution of
/// segment `i` when the candidate's full-cardinality symbol is `sym`.
/// The per-series lower bound then becomes `w` table lookups plus adds
/// ([`MindistTable::series_lb_sq`]), and the node-level bound reuses the
/// same rows by clamping a per-segment *reference symbol* into the
/// word's covered symbol range ([`MindistTable::word_lb_sq`]).
///
/// The table is built from a per-segment query **envelope**
/// `[lo_i, hi_i]`: a degenerate point (`lo == hi ==` the query PAA) for
/// Euclidean queries, or the LB_Keogh envelope hull for DTW queries.
/// For any envelope the resulting bounds are **bit-identical** to the
/// reference implementations ([`mindist_paa_sax_sq`] /
/// [`mindist_paa_isax_sq`] for points, the DTW kernel's interval-gap
/// arithmetic for hulls): the same subtractions, products, and
/// summation order are performed, only hoisted out of the per-candidate
/// loop. Property tests in `crates/core` and `tests/property_tests.rs`
/// pin this equivalence down.
///
/// At 16 segments the table occupies 32 KiB — L1/L2-cache-resident for
/// the entire queue-drain phase.
#[derive(Debug, Clone)]
pub struct MindistTable {
    /// Segment-major gap contributions: entry `i * MAX_CARD + sym`.
    table: Vec<f64>,
    /// Per-segment region index of the envelope's lower end. Clamping it
    /// into a word's `[lo_sym, hi_sym]` range selects the table entry
    /// that realizes the envelope-to-region-interval distance (see
    /// `word_lb_sq` for the case analysis).
    ref_sym: Vec<u8>,
    segments: usize,
}

impl MindistTable {
    /// Table for a point query summary (the Euclidean case): the
    /// envelope of segment `i` is the single PAA value `paa[i]`.
    pub fn from_paa(paa: &[f64], series_len: usize) -> Self {
        Self::from_envelope(paa, paa, series_len)
    }

    /// Table for a per-segment envelope `[lo_i, hi_i]` (the DTW case:
    /// the LB_Keogh envelope hull of each segment).
    ///
    /// # Panics
    /// Panics if `lo` and `hi` differ in length or `lo[i] > hi[i]`.
    pub fn from_envelope(lo: &[f64], hi: &[f64], series_len: usize) -> Self {
        assert_eq!(lo.len(), hi.len(), "ragged envelope");
        let w = lo.len();
        let bp = breakpoints();
        let mut table = vec![0.0f64; w * MAX_CARD];
        let mut ref_sym = vec![0u8; w];
        for i in 0..w {
            assert!(lo[i] <= hi[i], "inverted envelope on segment {i}");
            let (s, e) = crate::paa::segment_bounds(series_len, w, i);
            let weight = (e - s) as f64;
            ref_sym[i] = sax_symbol(lo[i]);
            let row = &mut table[i * MAX_CARD..(i + 1) * MAX_CARD];
            for (sym, slot) in row.iter_mut().enumerate() {
                let region_lo = if sym == 0 {
                    f64::NEG_INFINITY
                } else {
                    bp[sym - 1]
                };
                let region_hi = if sym == MAX_CARD - 1 {
                    f64::INFINITY
                } else {
                    bp[sym]
                };
                // Distance between the envelope interval and the region
                // interval; identical arithmetic to the reference
                // mindist implementations, evaluated once per symbol.
                let d = if lo[i] > region_hi {
                    lo[i] - region_hi
                } else if region_lo > hi[i] {
                    region_lo - hi[i]
                } else {
                    0.0
                };
                *slot = d * d * weight;
            }
        }
        MindistTable {
            table,
            ref_sym,
            segments: w,
        }
    }

    /// Number of segments (table rows).
    #[inline]
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Per-series lower bound: `w` lookups + adds. Bit-identical to
    /// [`mindist_paa_sax_sq`] when built via [`MindistTable::from_paa`].
    #[inline]
    pub fn series_lb_sq(&self, sax: &[u8]) -> f64 {
        debug_assert_eq!(sax.len(), self.segments);
        let mut sum = 0.0f64;
        for (i, &sym) in sax.iter().enumerate() {
            sum += self.table[i * MAX_CARD + sym as usize];
        }
        sum
    }

    /// Node-level lower bound for an iSAX word, reusing the per-symbol
    /// rows. Bit-identical to [`mindist_paa_isax_sq`] for point
    /// envelopes.
    ///
    /// Per segment the word covers the contiguous symbol range
    /// `[lo_sym, hi_sym]`; the gap from the envelope to the union of
    /// those regions is realized by exactly one table entry:
    ///
    /// * envelope entirely above the range — entry `hi_sym` (gap to the
    ///   range's upper edge);
    /// * envelope entirely below the range — entry `lo_sym`;
    /// * overlap — any entry whose region meets the envelope, gap 0.
    ///
    /// All three cases collapse to clamping the envelope's reference
    /// symbol into `[lo_sym, hi_sym]`.
    pub fn word_lb_sq(&self, word: &IsaxWord) -> f64 {
        debug_assert_eq!(word.segments(), self.segments);
        let mut sum = 0.0f64;
        for i in 0..self.segments {
            let (lo_sym, hi_sym) = word.full_range(i);
            let idx = (self.ref_sym[i] as usize).clamp(lo_sym, hi_sym);
            sum += self.table[i * MAX_CARD + idx];
        }
        sum
    }

    /// Per-series lower bounds for a contiguous block of
    /// full-cardinality SAX words (`segments` bytes per candidate,
    /// `out.len()` candidates) — the batched pruning pass over a leaf's
    /// scan-contiguous summary block. One tight loop over table-resident
    /// data: no branches, no breakpoint math.
    ///
    /// # Panics
    /// Panics if `sax_block.len() != out.len() * segments`.
    pub fn block_lb_sq(&self, sax_block: &[u8], out: &mut [f64]) {
        let w = self.segments;
        assert_eq!(sax_block.len(), out.len() * w, "ragged SAX block");
        for (slot, word) in out.iter_mut().zip(sax_block.chunks_exact(w)) {
            let mut sum = 0.0f64;
            for (i, &sym) in word.iter().enumerate() {
                sum += self.table[i * MAX_CARD + sym as usize];
            }
            *slot = sum;
        }
    }

    /// [`MindistTable::block_lb_sq`] over the segment-major (SoA)
    /// transpose of the block ([`crate::layout::SaxSoaView`]): eight
    /// candidates advance together through the segments, each summing
    /// its table entries in the same ascending-segment order as
    /// [`MindistTable::series_lb_sq`] — so every `out[j]` is
    /// bit-identical to the AoS path. Dispatches to the AVX2 gather
    /// kernel when [`crate::distance::simd::avx2_available`] says so.
    ///
    /// # Panics
    /// Panics if the view's segment count differs from the table's or
    /// `out.len() != view.len()`.
    pub fn block_lb_sq_soa(&self, view: &crate::layout::SaxSoaView<'_>, out: &mut [f64]) {
        assert_eq!(view.segments, self.segments, "segment count mismatch");
        assert_eq!(view.len, out.len(), "ragged SoA block");
        crate::distance::simd::lb_block_sq_soa(
            &self.table,
            view.soa,
            view.stride,
            view.offset,
            self.segments,
            out,
        );
    }

    /// Node-level lower bounds for a contiguous range of forest roots,
    /// eight words per iteration over the segment-major root planes
    /// ([`crate::tree::RootSoa`]): each `out[k]` is bit-identical to
    /// [`MindistTable::word_lb_sq`] of root `range.start + k`'s word —
    /// the clamp of the per-segment reference symbol into the word's
    /// covered symbol interval is exact integer arithmetic, and the
    /// per-root sums accumulate in the same ascending-segment order.
    /// Dispatches to the AVX2 clamp-and-gather kernel when
    /// [`crate::distance::simd::avx2_available`] says so.
    ///
    /// # Panics
    /// Panics if the planes' segment count differs from the table's,
    /// `out.len() != range.len()`, or the range exceeds the root count.
    pub fn root_lb_block(
        &self,
        roots: &crate::tree::RootSoa,
        range: std::ops::Range<usize>,
        out: &mut [f64],
    ) {
        assert_eq!(roots.segments(), self.segments, "segment count mismatch");
        assert_eq!(range.len(), out.len(), "ragged root block");
        assert!(range.end <= roots.len(), "root range out of bounds");
        crate::distance::simd::word_lb_sq_soa(
            &self.table,
            &self.ref_sym,
            roots.lo_plane(),
            roots.hi_plane(),
            roots.len(),
            range.start,
            self.segments,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::euclidean_sq;
    use crate::paa::paa;

    #[test]
    fn inv_norm_cdf_known_values() {
        assert!(inv_norm_cdf(0.5).abs() < 1e-9);
        assert!((inv_norm_cdf(0.975) - 1.959964).abs() < 1e-5);
        assert!((inv_norm_cdf(0.025) + 1.959964).abs() < 1e-5);
        assert!((inv_norm_cdf(0.9986501) - 2.9999).abs() < 1e-3);
    }

    #[test]
    fn breakpoints_sorted_and_symmetric() {
        let bp = breakpoints();
        for w in bp.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Symmetric around zero: bp[j] == -bp[254-j]
        for j in 0..bp.len() {
            assert!((bp[j] + bp[bp.len() - 1 - j]).abs() < 1e-9, "j={j}");
        }
        // Middle breakpoint is the median = 0
        assert!(bp[127].abs() < 1e-12);
    }

    #[test]
    fn sax_symbol_region_membership() {
        let bp = breakpoints();
        for &v in &[-5.0, -1.0, -0.001, 0.0, 0.001, 0.7, 5.0] {
            let s = sax_symbol(v) as usize;
            if s > 0 {
                assert!(bp[s - 1] <= v, "v={v} s={s}");
            }
            if s < MAX_CARD - 1 {
                assert!(v <= bp[s], "v={v} s={s}");
            }
        }
        assert_eq!(sax_symbol(f64::NEG_INFINITY), 0);
        assert_eq!(sax_symbol(f64::INFINITY), (MAX_CARD - 1) as u8);
    }

    #[test]
    fn symbol_nesting_property() {
        // The b-bit symbol is the top b bits of the 8-bit symbol: checking
        // against an explicitly computed low-cardinality region.
        for &v in &[-2.0f64, -0.3, 0.0, 0.4, 1.7] {
            let full = sax_symbol(v);
            for bits in 1..=8u8 {
                let sym = full >> (8 - bits);
                let word = IsaxWord {
                    symbols: vec![sym],
                    card_bits: vec![bits],
                };
                let (lo_sym, hi_sym) = word.full_range(0);
                assert!(lo_sym <= full as usize && full as usize <= hi_sym);
            }
        }
    }

    #[test]
    fn word_contains_and_refine() {
        let sax = [0b1011_0010u8, 0b0100_1111];
        let w1 = IsaxWord::from_sax(&sax, 1);
        assert_eq!(w1.symbols, vec![1, 0]);
        assert!(w1.contains(&sax));
        let w2 = w1.refine(0, 0); // sax[0] top bits are 10 -> matches
        assert!(w2.contains(&sax));
        let w2b = w1.refine(0, 1); // 11 -> does not match
        assert!(!w2b.contains(&sax));
        assert_eq!(w2.card_bits, vec![2, 1]);
    }

    #[test]
    fn full_range_widths() {
        let w = IsaxWord {
            symbols: vec![0b101, 0],
            card_bits: vec![3, 0],
        };
        assert_eq!(w.full_range(0), (0b101 << 5, (0b101 << 5) + 31));
        assert_eq!(w.full_range(1), (0, 255));
    }

    fn pseudo_series(seed: u64, len: usize) -> Vec<f32> {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut out = Vec::with_capacity(len);
        let mut acc = 0.0f32;
        for _ in 0..len {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc += ((x % 2000) as f32 / 1000.0) - 1.0;
            out.push(acc);
        }
        crate::series::znormalize(&mut out);
        out
    }

    #[test]
    fn mindist_lower_bounds_euclidean() {
        // Core soundness invariant: mindist(paa(Q), isax(S)) <= ED(Q, S)
        // for every cardinality.
        let len = 96;
        let segs = 8;
        for qa in 0..6u64 {
            let q = pseudo_series(qa + 100, len);
            let qp = paa(&q, segs);
            for sb in 0..6u64 {
                let s = pseudo_series(sb + 900, len);
                let sp = paa(&s, segs);
                let mut sax = vec![0u8; segs];
                sax_word_into(&sp, &mut sax);
                let ed = euclidean_sq(&q, &s);
                for bits in 1..=8u8 {
                    let w = IsaxWord::from_sax(&sax, bits);
                    let md = mindist_paa_isax_sq(&qp, &w, len);
                    assert!(
                        md <= ed + 1e-6,
                        "bits={bits} qa={qa} sb={sb}: mindist {md} > ed {ed}"
                    );
                }
                let md8 = mindist_paa_sax_sq(&qp, &sax, len);
                assert!(md8 <= ed + 1e-6);
            }
        }
    }

    #[test]
    fn mindist_monotone_in_cardinality() {
        // Refining a word can only tighten (increase) the lower bound.
        let len = 64;
        let segs = 8;
        let q = pseudo_series(3, len);
        let qp = paa(&q, segs);
        let s = pseudo_series(77, len);
        let sp = paa(&s, segs);
        let mut sax = vec![0u8; segs];
        sax_word_into(&sp, &mut sax);
        let mut prev = 0.0f64;
        for bits in 1..=8u8 {
            let w = IsaxWord::from_sax(&sax, bits);
            let md = mindist_paa_isax_sq(&qp, &w, len);
            assert!(md + 1e-12 >= prev, "bits={bits}: {md} < {prev}");
            prev = md;
        }
    }

    #[test]
    fn table_series_lb_bit_identical_to_reference() {
        let len = 96;
        let segs = 8;
        for qa in 0..8u64 {
            let q = pseudo_series(qa + 3, len);
            let qp = paa(&q, segs);
            let table = MindistTable::from_paa(&qp, len);
            for sb in 0..8u64 {
                let s = pseudo_series(sb + 400, len);
                let sp = paa(&s, segs);
                let mut sax = vec![0u8; segs];
                sax_word_into(&sp, &mut sax);
                let want = mindist_paa_sax_sq(&qp, &sax, len);
                let got = table.series_lb_sq(&sax);
                assert_eq!(got.to_bits(), want.to_bits(), "qa={qa} sb={sb}");
            }
        }
    }

    #[test]
    fn table_word_lb_bit_identical_to_reference() {
        let len = 64;
        let segs = 8;
        for qa in 0..6u64 {
            let q = pseudo_series(qa + 9, len);
            let qp = paa(&q, segs);
            let table = MindistTable::from_paa(&qp, len);
            for sb in 0..6u64 {
                let s = pseudo_series(sb + 800, len);
                let sp = paa(&s, segs);
                let mut sax = vec![0u8; segs];
                sax_word_into(&sp, &mut sax);
                for bits in 0..=8u8 {
                    let word = if bits == 0 {
                        IsaxWord {
                            symbols: vec![0; segs],
                            card_bits: vec![0; segs],
                        }
                    } else {
                        IsaxWord::from_sax(&sax, bits)
                    };
                    let want = mindist_paa_isax_sq(&qp, &word, len);
                    let got = table.word_lb_sq(&word);
                    assert_eq!(got.to_bits(), want.to_bits(), "qa={qa} sb={sb} bits={bits}");
                }
            }
        }
    }

    #[test]
    fn table_block_matches_per_word_lookups() {
        let len = 64;
        let segs = 8;
        let q = pseudo_series(17, len);
        let table = MindistTable::from_paa(&paa(&q, segs), len);
        let mut block = Vec::new();
        let mut want = Vec::new();
        for sb in 0..20u64 {
            let s = pseudo_series(sb + 100, len);
            let mut sax = vec![0u8; segs];
            sax_word_into(&paa(&s, segs), &mut sax);
            want.push(table.series_lb_sq(&sax));
            block.extend_from_slice(&sax);
        }
        let mut got = vec![0.0f64; want.len()];
        table.block_lb_sq(&block, &mut got);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn soa_block_matches_aos_block_bitwise() {
        // 37 candidates: exercises the 8-wide SIMD body and its tail.
        let len = 64;
        let segs = 8;
        let n = 37usize;
        let q = pseudo_series(29, len);
        let table = MindistTable::from_paa(&paa(&q, segs), len);
        let mut aos = Vec::new();
        for sb in 0..n as u64 {
            let s = pseudo_series(sb + 700, len);
            let mut sax = vec![0u8; segs];
            sax_word_into(&paa(&s, segs), &mut sax);
            aos.extend_from_slice(&sax);
        }
        let mut soa = vec![0u8; n * segs];
        for p in 0..n {
            for i in 0..segs {
                soa[i * n + p] = aos[p * segs + i];
            }
        }
        let mut want = vec![0.0f64; n];
        table.block_lb_sq(&aos, &mut want);
        // Offset windows: the view need not start at position 0.
        for (off, cnt) in [(0usize, n), (3, 17), (5, 8), (30, 7), (36, 1), (7, 0)] {
            let view = crate::layout::SaxSoaView {
                soa: &soa,
                stride: n,
                offset: off,
                len: cnt,
                segments: segs,
            };
            let mut got = vec![0.0f64; cnt];
            table.block_lb_sq_soa(&view, &mut got);
            for (j, g) in got.iter().enumerate() {
                assert_eq!(
                    g.to_bits(),
                    want[off + j].to_bits(),
                    "off={off} cnt={cnt} j={j}"
                );
            }
        }
    }

    #[test]
    fn root_sweep_matches_word_lb_bitwise() {
        // 43 roots with mixed per-segment cardinalities (including
        // 0-bit whole-line segments): the batched clamp-and-gather
        // sweep must reproduce `word_lb_sq` bit for bit, across the
        // 8-wide body, the tail, and arbitrary sub-ranges.
        let len = 64;
        let segs = 8;
        let n = 43usize;
        let q = pseudo_series(57, len);
        let table = MindistTable::from_paa(&paa(&q, segs), len);
        let words: Vec<IsaxWord> = (0..n)
            .map(|r| {
                let s = pseudo_series(r as u64 + 4000, len);
                let mut sax = vec![0u8; segs];
                sax_word_into(&paa(&s, segs), &mut sax);
                let card_bits: Vec<u8> = (0..segs).map(|i| ((r + i * 3) % 9) as u8).collect();
                let symbols: Vec<u8> = sax
                    .iter()
                    .zip(&card_bits)
                    .map(|(&sym, &bits)| if bits == 0 { 0 } else { sym >> (8 - bits) })
                    .collect();
                IsaxWord { symbols, card_bits }
            })
            .collect();
        let roots = crate::tree::RootSoa::from_words(words.iter());
        assert_eq!(roots.len(), n);
        assert_eq!(roots.segments(), segs);
        let want: Vec<f64> = words.iter().map(|w| table.word_lb_sq(w)).collect();
        for range in [0..n, 0..8, 3..20, 30..43, 42..43, 7..7] {
            let mut got = vec![0.0f64; range.len()];
            table.root_lb_block(&roots, range.clone(), &mut got);
            for (j, g) in got.iter().enumerate() {
                assert_eq!(
                    g.to_bits(),
                    want[range.start + j].to_bits(),
                    "range={range:?} j={j}"
                );
            }
        }
    }

    #[test]
    fn envelope_table_gap_matches_interval_arithmetic() {
        // Interval envelopes (the DTW hull case): the table entry for a
        // word range must equal the direct interval-to-interval gap.
        let len = 64;
        let segs = 8;
        let q = pseudo_series(23, len);
        let qp = paa(&q, segs);
        let lo: Vec<f64> = qp.iter().map(|v| v - 0.4).collect();
        let hi: Vec<f64> = qp.iter().map(|v| v + 0.3).collect();
        let table = MindistTable::from_envelope(&lo, &hi, len);
        let bp = breakpoints();
        for sb in 0..10u64 {
            let s = pseudo_series(sb + 50, len);
            let mut sax = vec![0u8; segs];
            sax_word_into(&paa(&s, segs), &mut sax);
            for bits in 1..=8u8 {
                let word = IsaxWord::from_sax(&sax, bits);
                let mut want = 0.0f64;
                for i in 0..segs {
                    let (a, b) = word.full_range(i);
                    let rlo = if a == 0 { f64::NEG_INFINITY } else { bp[a - 1] };
                    let rhi = if b == MAX_CARD - 1 {
                        f64::INFINITY
                    } else {
                        bp[b]
                    };
                    let d = if lo[i] > rhi {
                        lo[i] - rhi
                    } else if rlo > hi[i] {
                        rlo - hi[i]
                    } else {
                        0.0
                    };
                    let (s0, e0) = crate::paa::segment_bounds(len, segs, i);
                    want += d * d * (e0 - s0) as f64;
                }
                let got = table.word_lb_sq(&word);
                assert_eq!(got.to_bits(), want.to_bits(), "sb={sb} bits={bits}");
            }
        }
    }

    #[test]
    fn mindist_zero_for_matching_region() {
        let len = 32;
        let segs = 4;
        let s = pseudo_series(5, len);
        let sp = paa(&s, segs);
        let mut sax = vec![0u8; segs];
        sax_word_into(&sp, &mut sax);
        let w = IsaxWord::from_sax(&sax, 8);
        // The series' own PAA sits inside its own region: mindist must be 0.
        assert_eq!(mindist_paa_isax_sq(&sp, &w, len), 0.0);
    }
}
