//! The Miri tier's test subset (`cargo run -p xtask -- miri` runs this
//! file — plus the `scratch` unit tests — under the interpreter).
//!
//! Miri executes real Rust semantics with full allocation and borrow
//! tracking, so these tests check the crate's load-bearing unsafe for
//! UB the type system cannot see: the pool's job lifetime erasure
//! (`erase_job`), the striped raw-pointer summary and forest-slot
//! writes, and the scratch recycling. Sizes are tiny — Miri is orders
//! of magnitude slower than native — but every unsafe path is crossed
//! with real threads (thread pinning is `cfg`'d out under Miri).
//!
//! Gated behind the `miri-safe` feature so the plain test tier does not
//! run the same exercises twice.
#![cfg(feature = "miri-safe")]

use odyssey_core::buffers::Summaries;
use odyssey_core::index::{Index, IndexConfig};
use odyssey_core::search::engine::{BatchEngine, BatchQuery, QueryKind};
use odyssey_core::search::exact::{SearchParams, StealView};
use odyssey_core::series::DatasetBuffer;
use std::sync::Arc;

fn walk_dataset(n: usize, len: usize, seed: u64) -> DatasetBuffer {
    let mut x = seed | 1;
    let mut data = Vec::with_capacity(n * len);
    for _ in 0..n {
        let mut acc = 0.0f32;
        let mut s = Vec::with_capacity(len);
        for _ in 0..len {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc += ((x % 2000) as f32 / 1000.0) - 1.0;
            s.push(acc);
        }
        odyssey_core::series::znormalize(&mut s);
        data.extend_from_slice(&s);
    }
    DatasetBuffer::from_vec(data, len)
}

fn tiny_index(n: usize, threads: usize) -> Arc<Index> {
    Arc::new(Index::build(
        walk_dataset(n, 16, 9),
        IndexConfig::new(16).with_segments(4).with_leaf_capacity(8),
        threads,
    ))
}

/// The striped `SendPtr` writes of `Summaries::compute`: concurrent
/// disjoint raw-pointer writes must be UB-free and match the
/// single-thread result byte for byte.
#[test]
fn striped_summary_writes_match_sequential_at_small_sizes() {
    let data = walk_dataset(40, 16, 5);
    let par = Summaries::compute(&data, 4, 3);
    let seq = Summaries::compute(&data, 4, 1);
    for id in 0..40u32 {
        assert_eq!(par.sax(id), seq.sax(id), "id={id}");
    }
}

/// `build_forest`'s `SlotsPtr` writes (claimed-slot raw-pointer
/// stores) run inside `Index::build`; building with several threads
/// must produce a well-formed index.
#[test]
fn parallel_index_build_is_ub_free() {
    let idx = tiny_index(48, 3);
    assert_eq!(idx.num_series(), 48);
}

/// The pool's `erase_job` lifetime erasure, epoch hand-off, and debug
/// slot canary, round-tripped across several queries on a resident
/// engine (the erased borrow dies and is re-erased every query).
#[test]
fn pool_job_erasure_round_trips() {
    let idx = tiny_index(32, 1);
    let engine = BatchEngine::new(Arc::clone(&idx), 2);
    let params = SearchParams::new(2);
    for seed in 0..3u64 {
        let q = walk_dataset(1, 16, 40 + seed).series(0).to_vec();
        let got = engine.exact(&q, &params);
        let want = odyssey_core::search::exact::exact_search(&idx, &q, &params);
        assert_eq!(got.answer.distance.to_bits(), want.answer.distance.to_bits());
    }
}

/// The lane runtime's erased job slots and group barriers, exercised
/// through a two-lane concurrent batch.
#[test]
fn lane_job_slots_round_trip() {
    use odyssey_core::search::multiq::ConcurrentPlan;
    let idx = tiny_index(32, 1);
    let engine = BatchEngine::new(Arc::clone(&idx), 2);
    let qdata: Vec<Vec<f32>> = (0..2)
        .map(|i| walk_dataset(1, 16, 60 + i).series(0).to_vec())
        .collect();
    let queries: Vec<BatchQuery> = qdata
        .iter()
        .map(|q| BatchQuery::new(q, QueryKind::Exact))
        .collect();
    let params = SearchParams::new(1);
    let order: Vec<usize> = (0..queries.len()).collect();
    let seq = engine.run_batch(&queries, &order, &params);
    let conc = engine.run_batch_concurrent(
        &queries,
        &ConcurrentPlan::uniform(queries.len(), 2, 1),
        &params,
    );
    for (a, b) in seq.items.iter().zip(&conc.items) {
        assert_eq!(
            a.answer.nn().distance.to_bits(),
            b.answer.nn().distance.to_bits()
        );
    }
}

/// The StealView protocol state machine on its public test surface:
/// init, publish, steal marking, and the claim-free re-init used by
/// the pre-stolen flow.
#[test]
fn steal_view_protocol_round_trip() {
    let view = StealView::new();
    assert!(view.try_steal(2).is_empty(), "nothing stealable before init");
    view.test_init(4);
    assert!(
        view.try_steal(2).is_empty(),
        "nothing stealable before processing"
    );
    view.test_publish(vec![0, 1, 2, 3]);
    let stolen = view.try_steal(2);
    assert_eq!(stolen, vec![3, 2], "steals from the tail");
    let again = view.try_steal(4);
    assert_eq!(again, vec![1, 0], "remaining queues, no double steal");
    assert!(view.try_steal(1).is_empty(), "everything already stolen");
}
