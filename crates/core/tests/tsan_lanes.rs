//! The ThreadSanitizer tier's target tests (`cargo run -p xtask --
//! tsan` builds exactly this file with `-Zsanitizer=thread`).
//!
//! These are ordinary bit-identity tests — they also run in the plain
//! test tier — but they are chosen so that every synchronization edge
//! of the concurrency machinery is crossed under load: the resident
//! pool's epoch hand-off, the lane runtime's group barriers, job slots
//! and intra-round re-admission, and the steal registry's cooperative
//! service path, each at pool widths 2, 4, and 8.
//!
//! Everything here synchronizes through in-crate primitives
//! (`PhaseBarrier`, monomorphized `Mutex<T>`), so the happens-before
//! edges are visible to TSan without rebuilding std (`-Zbuild-std`
//! needs a network the CI cache setup avoids).

use odyssey_core::index::{Index, IndexConfig};
use odyssey_core::search::engine::{BatchEngine, BatchQuery, QueryKind};
use odyssey_core::search::exact::SearchParams;
use odyssey_core::search::multiq::ConcurrentPlan;
use odyssey_core::series::DatasetBuffer;
use std::sync::Arc;

fn walk_dataset(n: usize, len: usize, seed: u64) -> DatasetBuffer {
    let mut x = seed | 1;
    let mut data = Vec::with_capacity(n * len);
    for _ in 0..n {
        let mut acc = 0.0f32;
        let mut s = Vec::with_capacity(len);
        for _ in 0..len {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc += ((x % 2000) as f32 / 1000.0) - 1.0;
            s.push(acc);
        }
        odyssey_core::series::znormalize(&mut s);
        data.extend_from_slice(&s);
    }
    DatasetBuffer::from_vec(data, len)
}

fn build(n: usize) -> Arc<Index> {
    Arc::new(Index::build(
        walk_dataset(n, 64, 33),
        IndexConfig::new(64).with_segments(8).with_leaf_capacity(24),
        4,
    ))
}

/// Lanes at every pool width must answer bit-identically to the
/// sequential batch path — while TSan watches the group barriers, the
/// shared lane queues (re-admission), and the result slots.
#[test]
fn concurrent_lanes_bit_identical_at_2_4_8_threads() {
    let index = build(700);
    let qdata: Vec<Vec<f32>> = (0..8)
        .map(|i| walk_dataset(1, 64, 500 + i).series(0).to_vec())
        .collect();
    let queries: Vec<BatchQuery> = qdata
        .iter()
        .map(|q| BatchQuery::new(q, QueryKind::Exact))
        .collect();
    let params = SearchParams::new(1);
    let order: Vec<usize> = (0..queries.len()).collect();

    let reference = BatchEngine::new(Arc::clone(&index), 2)
        .run_batch(&queries, &order, &params);

    for pool in [2usize, 4, 8] {
        let engine = BatchEngine::new(Arc::clone(&index), pool);
        // Several lanes per round (width pool/2, min 1) so lanes run
        // simultaneously and re-admission has victims to drain.
        let plan = ConcurrentPlan::uniform(queries.len(), pool, (pool / 2).max(1));
        let conc = engine.run_batch_concurrent(&queries, &plan, &params);
        for (qi, (a, b)) in reference.items.iter().zip(&conc.items).enumerate() {
            let (da, db) = (a.answer.nn().distance, b.answer.nn().distance);
            assert_eq!(
                da.to_bits(),
                db.to_bits(),
                "pool={pool} query={qi}: lanes must be bit-identical to sequential"
            );
        }
    }
}

/// The continuous-dispatch path (the serving loop's mechanism): lanes
/// claim queries from one shared source with **no barrier between
/// claims** — a lane that finishes immediately pulls the next query
/// while its siblings are still mid-search. TSan watches the shared
/// claim queue, each lane's publish/join barriers, and the result
/// slots; answers must stay bit-identical to the sequential batch at
/// every pool width (mixed ED / DTW / k-NN kinds).
#[test]
fn continuous_dispatch_bit_identical_at_2_4_8_threads() {
    use odyssey_core::search::multiq::uniform_widths;
    use parking_lot::Mutex;
    use std::collections::VecDeque;

    let index = build(700);
    let qdata: Vec<Vec<f32>> = (0..9)
        .map(|i| walk_dataset(1, 64, 4200 + i).series(0).to_vec())
        .collect();
    let queries: Vec<BatchQuery> = qdata
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let kind = match i % 3 {
                0 => QueryKind::Exact,
                1 => QueryKind::Dtw(4),
                _ => QueryKind::Knn(3),
            };
            BatchQuery::new(q, kind)
        })
        .collect();
    let params = SearchParams::new(1);
    let order: Vec<usize> = (0..queries.len()).collect();
    let reference = BatchEngine::new(Arc::clone(&index), 2)
        .run_batch(&queries, &order, &params);

    for pool in [2usize, 4, 8] {
        let engine = BatchEngine::new(Arc::clone(&index), pool);
        let source: Mutex<VecDeque<usize>> = Mutex::new((0..queries.len()).collect());
        let slots: Vec<Mutex<Option<odyssey_core::search::engine::BatchItem>>> =
            (0..queries.len()).map(|_| Mutex::new(None)).collect();
        // Several width-(pool/2) lanes claiming from the same queue.
        let widths = uniform_widths(pool, (pool / 2).max(1));
        engine.run_dispatch(&widths, &|ctx, _lane| loop {
            let Some(qi) = source.lock().pop_front() else { break };
            let item = ctx.execute(qi, &queries[qi], &params);
            *slots[qi].lock() = Some(item);
        });
        for (qi, (a, slot)) in reference.items.iter().zip(&slots).enumerate() {
            let b = slot.lock();
            let b = b.as_ref().expect("dispatch answered every query");
            match (&a.answer, &b.answer) {
                (
                    odyssey_core::search::engine::BatchAnswer::Nn(x),
                    odyssey_core::search::engine::BatchAnswer::Nn(y),
                ) => {
                    assert_eq!(
                        x.distance.to_bits(),
                        y.distance.to_bits(),
                        "pool={pool} query={qi}: continuous dispatch must be bit-identical"
                    );
                    assert_eq!(x.series_id, y.series_id, "pool={pool} query={qi}");
                }
                (
                    odyssey_core::search::engine::BatchAnswer::Knn(x),
                    odyssey_core::search::engine::BatchAnswer::Knn(y),
                ) => {
                    assert_eq!(x.neighbors, y.neighbors, "pool={pool} query={qi}");
                }
                _ => panic!("pool={pool} query={qi}: answer kinds diverged"),
            }
        }
    }
}

/// The steal registry's cooperative service path under concurrent
/// lanes: workers serve steal requests between queue claims while
/// other lanes run. Exactness must survive at every pool width.
#[test]
fn steal_service_under_lanes_stays_exact_at_2_4_8_threads() {
    let index = build(600);
    let qdata: Vec<Vec<f32>> = (0..6)
        .map(|i| walk_dataset(1, 64, 900 + i).series(0).to_vec())
        .collect();
    let queries: Vec<BatchQuery> = qdata
        .iter()
        .map(|q| BatchQuery::new(q, QueryKind::Exact))
        .collect();
    let params = SearchParams::new(1).with_th(16);
    let order: Vec<usize> = (0..queries.len()).collect();
    let reference = BatchEngine::new(Arc::clone(&index), 2)
        .run_batch(&queries, &order, &params);

    for pool in [2usize, 4, 8] {
        let engine = BatchEngine::new(Arc::clone(&index), pool);
        // Exercise the registry's snapshot/serve surface concurrently
        // with the running lanes.
        engine.steal_registry().install_service(Arc::new(|reg| {
            let _ = reg.snapshot();
        }));
        let plan = ConcurrentPlan::uniform(queries.len(), pool, 1);
        let conc = engine.run_batch_concurrent(&queries, &plan, &params);
        for (qi, (a, b)) in reference.items.iter().zip(&conc.items).enumerate() {
            assert_eq!(
                a.answer.nn().distance.to_bits(),
                b.answer.nn().distance.to_bits(),
                "pool={pool} query={qi}: steal service must not disturb answers"
            );
        }
        assert_eq!(engine.steal_registry().in_flight(), 0);
    }
}

/// A worker killed mid-round — the failover tier's death model: the
/// cooperative service hook panics once inside a lane round, the
/// poisoned barrier unwinds every sibling worker, the engine resets
/// its pool and deregisters the steal grant, and the *same* engine
/// then re-runs the full batch bit-identically. TSan watches the
/// poison/reset edges that an unsynchronized teardown would miss.
#[test]
fn kill_mid_round_then_rerun_is_bit_identical_at_2_4_8_threads() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let index = build(600);
    let qdata: Vec<Vec<f32>> = (0..6)
        .map(|i| walk_dataset(1, 64, 1500 + i).series(0).to_vec())
        .collect();
    let queries: Vec<BatchQuery> = qdata
        .iter()
        .map(|q| BatchQuery::new(q, QueryKind::Exact))
        .collect();
    let params = SearchParams::new(1).with_th(16);
    let order: Vec<usize> = (0..queries.len()).collect();
    let reference = BatchEngine::new(Arc::clone(&index), 2)
        .run_batch(&queries, &order, &params);

    for pool in [2usize, 4, 8] {
        let engine = BatchEngine::new(Arc::clone(&index), pool);
        let armed = Arc::new(AtomicBool::new(true));
        let trigger = Arc::clone(&armed);
        engine.steal_registry().install_service(Arc::new(move |_| {
            if trigger.swap(false, Ordering::AcqRel) {
                panic!("injected worker death");
            }
        }));
        let plan = ConcurrentPlan::uniform(queries.len(), pool, (pool / 2).max(1));
        let killed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.run_batch_concurrent(&queries, &plan, &params)
        }));
        assert!(killed.is_err(), "pool={pool}: armed hook must kill the round");
        assert_eq!(
            engine.steal_registry().in_flight(),
            0,
            "pool={pool}: unwind must deregister the dying round's grants"
        );
        // The pool reset on unwind leaves the engine reusable: the
        // re-run (a failover re-execution) must match the reference.
        let conc = engine.run_batch_concurrent(&queries, &plan, &params);
        for (qi, (a, b)) in reference.items.iter().zip(&conc.items).enumerate() {
            assert_eq!(
                a.answer.nn().distance.to_bits(),
                b.answer.nn().distance.to_bits(),
                "pool={pool} query={qi}: re-run after kill must be bit-identical"
            );
        }
    }
}

/// The resident pool's epoch protocol (publish, run, drain) crossed
/// many times in a row at each width — the pattern where a missed
/// happens-before edge between submitter and workers would surface.
#[test]
fn pool_reuse_across_queries_at_2_4_8_threads() {
    let index = build(500);
    let params = SearchParams::new(1);
    for pool in [2usize, 4, 8] {
        let engine = BatchEngine::new(Arc::clone(&index), pool);
        for qseed in 0..4u64 {
            let q = walk_dataset(1, 64, 2000 + qseed).series(0).to_vec();
            let single = odyssey_core::search::exact::exact_search(&index, &q, &params);
            let pooled = engine.exact(&q, &params);
            assert_eq!(
                pooled.answer.distance.to_bits(),
                single.answer.distance.to_bits(),
                "pool={pool} qseed={qseed}"
            );
        }
    }
}
