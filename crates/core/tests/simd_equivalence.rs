//! SIMD ↔ scalar equivalence suite: the dispatched kernels must be
//! **bit-identical** to their scalar fallbacks on every input shape the
//! engine produces — that is the contract that lets the batch, lane,
//! and cluster bit-identity suites keep holding regardless of which CPU
//! (or `ODYSSEY_SIMD` setting) a node runs on.
//!
//! On an AVX2 machine with no scalar override, these tests compare the
//! AVX2 kernels against the scalar reference; under `ODYSSEY_SIMD=scalar`
//! (the `xtask scalar` tier) they degenerate to scalar-vs-scalar, which
//! keeps the suite runnable — the forced-scalar tier's purpose is the
//! *rest* of the test suite exercising the fallback end to end.
//!
//! The shapes stressed here, per the kernels' dispatch seams:
//! * lengths that are not multiples of the 4-lane width, the 8-wide
//!   gather, or the 32-element abandon block (tail handling);
//! * every segment count 1..=16 plus ragged view offsets (SoA sweep);
//! * early-abandon thresholds placed exactly at block-boundary partial
//!   sums (the inclusive/exclusive abandon edge), all NaN-free.

use odyssey_core::distance::{
    dtw_banded, dtw_banded_scalar, euclidean_sq_early_abandon, euclidean_sq_early_abandon_scalar,
    keogh_envelope, lb_keogh_sq, lb_keogh_sq_scalar,
};
use odyssey_core::distance::simd::dispatch_name;

/// Deterministic pseudo-random series (same xorshift walk the in-crate
/// tests use), NaN-free by construction.
fn pseudo_series(seed: u64, len: usize) -> Vec<f32> {
    let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut out = Vec::with_capacity(len);
    let mut acc = 0.0f32;
    for _ in 0..len {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc += ((x % 2000) as f32 / 1000.0) - 1.0;
        out.push(acc);
    }
    out
}

/// Lengths straddling every vector seam: the 4-lane chunk, the 8-wide
/// gather, and the 32-element abandon block.
const LENGTHS: &[usize] = &[
    0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 37, 63, 64, 65, 95, 96, 97, 127, 128, 129,
    255, 256, 257,
];

fn assert_opt_bits_eq(got: Option<f64>, want: Option<f64>, ctx: &str) {
    match (got, want) {
        (None, None) => {}
        (Some(g), Some(w)) => assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{ctx}: value mismatch ({g} vs {w}) under dispatch {}",
            dispatch_name()
        ),
        _ => panic!(
            "{ctx}: abandon decision mismatch ({got:?} vs {want:?}) under dispatch {}",
            dispatch_name()
        ),
    }
}

/// The scalar kernel's own partial sum after `k` elements — used to
/// place thresholds exactly on abandon-check boundaries.
fn ed_prefix_sum(a: &[f32], b: &[f32], k: usize) -> f64 {
    let mut acc = [0.0f64; 4];
    for (i, (x, y)) in a.iter().zip(b).take(k).enumerate() {
        let d = (x - y) as f64;
        acc[i % 4] += d * d;
    }
    acc[0] + acc[1] + acc[2] + acc[3]
}

#[test]
fn euclidean_early_abandon_matches_scalar_across_tail_lengths() {
    for &len in LENGTHS {
        let a = pseudo_series(len as u64 + 1, len);
        let b = pseudo_series(len as u64 + 1000, len);
        for thr in [f64::INFINITY, 1e9, 100.0, 1.0, 0.0] {
            let got = euclidean_sq_early_abandon(&a, &b, thr);
            let want = euclidean_sq_early_abandon_scalar(&a, &b, thr);
            assert_opt_bits_eq(got, want, &format!("ED len={len} thr={thr}"));
        }
    }
}

#[test]
fn euclidean_abandon_at_block_boundary_is_bit_exact() {
    // Thresholds equal to the kernel's own partial sum at each abandon
    // check (k = 32, 64, ...) and the full sum: the > comparison is
    // exclusive, so an exactly-equal threshold must NOT abandon there —
    // in both paths.
    for &len in &[32usize, 33, 64, 96, 100, 129, 256] {
        let a = pseudo_series(7, len);
        let b = pseudo_series(8, len);
        let mut boundaries: Vec<usize> = (1..=len / 32).map(|blk| blk * 32).collect();
        boundaries.push(len);
        for k in boundaries {
            let s = ed_prefix_sum(&a, &b, k);
            for thr in [s, f64_next_down(s), f64_next_up(s)] {
                let got = euclidean_sq_early_abandon(&a, &b, thr);
                let want = euclidean_sq_early_abandon_scalar(&a, &b, thr);
                assert_opt_bits_eq(got, want, &format!("ED boundary len={len} k={k} thr={thr}"));
            }
        }
    }
}

fn f64_next_up(v: f64) -> f64 {
    f64::from_bits(v.to_bits() + 1)
}

fn f64_next_down(v: f64) -> f64 {
    f64::from_bits(v.to_bits() - 1)
}

/// The scalar LB_Keogh partial sum after `k` elements.
fn keogh_prefix_sum(u: &[f32], l: &[f32], c: &[f32], k: usize) -> f64 {
    let mut acc = [0.0f64; 4];
    for i in 0..k {
        let d = (c[i] - u[i]).max(l[i] - c[i]).max(0.0) as f64;
        acc[i % 4] += d * d;
    }
    acc[0] + acc[1] + acc[2] + acc[3]
}

#[test]
fn lb_keogh_matches_scalar_across_tail_lengths_and_windows() {
    for &len in LENGTHS {
        let q = pseudo_series(len as u64 + 31, len);
        let c = pseudo_series(len as u64 + 77, len);
        for window in [0usize, 1, 3, 8] {
            let env = keogh_envelope(&q, window);
            for thr in [f64::INFINITY, 1e6, 10.0, 0.0] {
                let got = lb_keogh_sq(&env, &c, thr);
                let want = lb_keogh_sq_scalar(&env.upper, &env.lower, &c, thr);
                assert_opt_bits_eq(got, want, &format!("LBK len={len} w={window} thr={thr}"));
            }
        }
    }
}

#[test]
fn lb_keogh_abandon_at_block_boundary_is_bit_exact() {
    for &len in &[32usize, 64, 97, 128, 200] {
        let q = pseudo_series(3, len);
        let c = pseudo_series(5, len);
        let env = keogh_envelope(&q, 4);
        let mut boundaries: Vec<usize> = (1..=len / 32).map(|blk| blk * 32).collect();
        boundaries.push(len);
        for k in boundaries {
            let s = keogh_prefix_sum(&env.upper, &env.lower, &c, k);
            for thr in [s, f64_next_down(s.max(f64::MIN_POSITIVE)), f64_next_up(s)] {
                let got = lb_keogh_sq(&env, &c, thr);
                let want = lb_keogh_sq_scalar(&env.upper, &env.lower, &c, thr);
                assert_opt_bits_eq(got, want, &format!("LBK boundary len={len} k={k}"));
            }
        }
    }
}

#[test]
fn dtw_banded_matches_scalar_across_lengths_windows_thresholds() {
    for &len in &[1usize, 2, 3, 5, 7, 9, 16, 17, 33, 40, 64, 65, 100] {
        let a = pseudo_series(len as u64 + 11, len);
        let b = pseudo_series(len as u64 + 500, len);
        for window in [0usize, 1, 2, 3, 7, 15, len] {
            let full = dtw_banded_scalar(&a, &b, window, f64::INFINITY).expect("unbounded");
            for thr in [
                f64::INFINITY,
                full,
                f64_next_down(full.max(f64::MIN_POSITIVE)),
                full * 0.5,
                0.0,
            ] {
                let got = dtw_banded(&a, &b, window, thr);
                let want = dtw_banded_scalar(&a, &b, window, thr);
                assert_opt_bits_eq(got, want, &format!("DTW len={len} w={window} thr={thr}"));
            }
        }
    }
    assert_opt_bits_eq(dtw_banded(&[], &[], 3, 1.0), Some(0.0), "DTW empty");
}

#[test]
fn root_word_sweep_matches_word_lb_for_all_segment_counts() {
    use odyssey_core::paa::paa;
    use odyssey_core::sax::{sax_word_into, IsaxWord, MindistTable};
    use odyssey_core::tree::RootSoa;

    let series_len = 32;
    let n = 41; // odd: 8-wide body + tails
    for segments in 1..=16usize {
        let words: Vec<IsaxWord> = (0..n)
            .map(|r| {
                let s = pseudo_series(r as u64 + 6000, series_len);
                let mut sax = vec![0u8; segments];
                sax_word_into(&paa(&s, segments), &mut sax);
                // Mixed cardinalities 0..=8 across segments and roots.
                let card_bits: Vec<u8> = (0..segments).map(|i| ((r + i * 5) % 9) as u8).collect();
                let symbols: Vec<u8> = sax
                    .iter()
                    .zip(&card_bits)
                    .map(|(&sym, &bits)| if bits == 0 { 0 } else { sym >> (8 - bits) })
                    .collect();
                IsaxWord { symbols, card_bits }
            })
            .collect();
        let roots = RootSoa::from_words(words.iter());
        let q = pseudo_series(4321, series_len);
        let table = MindistTable::from_paa(&paa(&q, segments), series_len);
        for range in [0..n, 0..8, 3..20, 5..6, 33..41, 40..41, 17..17] {
            let mut got = vec![0.0f64; range.len()];
            table.root_lb_block(&roots, range.clone(), &mut got);
            for (j, g) in got.iter().enumerate() {
                let want = table.word_lb_sq(&words[range.start + j]);
                assert_eq!(
                    g.to_bits(),
                    want.to_bits(),
                    "segments={segments} range={range:?} j={j} under dispatch {}",
                    dispatch_name()
                );
            }
        }
    }
}

#[test]
fn soa_block_sweep_matches_aos_for_all_segment_counts() {
    use odyssey_core::buffers::Summaries;
    use odyssey_core::layout::LeafLayout;
    use odyssey_core::sax::MindistTable;
    use odyssey_core::series::DatasetBuffer;

    let series_len = 32;
    let n = 41; // odd: 8-wide body + 1-wide tail
    let mut raw = Vec::with_capacity(n * series_len);
    for s in 0..n as u64 {
        raw.extend_from_slice(&pseudo_series(s + 9000, series_len));
    }
    let data = DatasetBuffer::from_vec(raw, series_len);
    for segments in 1..=16usize {
        let summaries = Summaries::compute(&data, segments, 1);
        // A non-identity permutation, so view offsets matter.
        let perm: Vec<u32> = (0..n as u32).map(|p| (p * 7 + 3) % n as u32).collect();
        let layout = LeafLayout::build(&data, &summaries, perm);
        let q = pseudo_series(1234, series_len);
        let qpaa = odyssey_core::paa::paa(&q, segments);
        let table = MindistTable::from_paa(&qpaa, series_len);
        for range in [0..n, 0..8, 3..20, 5..6, 33..41, 40..41, 17..17] {
            let mut want = vec![0.0f64; range.len()];
            table.block_lb_sq(layout.sax_block(range.clone()), &mut want);
            let mut got = vec![0.0f64; range.len()];
            table.block_lb_sq_soa(&layout.sax_soa_view(range.clone()), &mut got);
            for (j, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    w.to_bits(),
                    "segments={segments} range={range:?} j={j} under dispatch {}",
                    dispatch_name()
                );
            }
        }
    }
}
