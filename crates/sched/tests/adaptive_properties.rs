//! Property tests for the makespan solver and the online feedback
//! pipeline.
//!
//! Two contracts are load-bearing for correctness elsewhere in the
//! workspace and are checked here over randomized inputs rather than
//! hand-picked fixtures:
//!
//! 1. **Double partition.** Whatever estimates the predictor produces,
//!    an adaptive plan must name every query exactly once and its lane
//!    widths must sum to the worker pool — the batch engine trusts this
//!    blindly when it carves worker ranges.
//! 2. **Replayable planning.** Planned widths are a pure function of
//!    (feedback stream, calibration samples). Two engines that observe
//!    the same history must plan the same widths, which is what makes
//!    the cluster's adaptive mode reproducible under a fixed seed.

use odyssey_sched::admission::{
    plan_dispatch_widths_adaptive, plan_lanes_adaptive, AdmissionConfig,
};
use odyssey_sched::{CostModel, OnlineCostModel, SpeedupCurve};
use proptest::prelude::*;

/// A handful of curve shapes spanning the Figure 8 families: linear
/// scaling, hard saturation past width 2, and gentle sub-linear decay.
fn curve_for(shape: u8) -> SpeedupCurve {
    match shape % 3 {
        0 => SpeedupCurve::linear(),
        1 => SpeedupCurve::from_times(&[(1, 8.0), (2, 4.4), (4, 4.0), (8, 3.9)]),
        _ => SpeedupCurve::from_times(&[(1, 8.0), (2, 4.2), (4, 2.6), (8, 2.2)]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // The adaptive planner double-partitions workers and queries for
    // arbitrary estimate vectors, pools, and easy-width knobs.
    #[test]
    fn adaptive_plan_always_double_partitions(
        est in proptest::collection::vec(0.0f64..50.0, 0usize..40),
        pool in 1usize..=16,
        easy in 1usize..=4,
        shape in any::<u8>(),
    ) {
        let curve = curve_for(shape);
        let cfg = AdmissionConfig::default().with_easy_width(easy);
        let plan = plan_lanes_adaptive(&est, pool, &cfg, &curve);
        plan.validate(pool, est.len());
        let mut qs: Vec<usize> = plan
            .rounds
            .iter()
            .flat_map(|r| &r.lanes)
            .flat_map(|l| l.queries.iter().copied())
            .collect();
        qs.sort_unstable();
        prop_assert_eq!(qs, (0..est.len()).collect::<Vec<_>>());
        for round in &plan.rounds {
            let total: usize = round.lanes.iter().map(|l| l.width).sum();
            prop_assert_eq!(total, pool);
            prop_assert!(round.lanes.iter().all(|l| l.width >= 1));
            prop_assert!(round.lanes.iter().all(|l| !l.queries.is_empty()));
        }
    }

    // The dispatch-width variant keeps the same pool partition and a
    // coherent wide/narrow split for arbitrary inputs.
    #[test]
    fn dispatch_widths_always_partition_the_pool(
        est in proptest::collection::vec(0.0f64..50.0, 0usize..40),
        pool in 1usize..=16,
        easy in 1usize..=4,
        shape in any::<u8>(),
    ) {
        let curve = curve_for(shape);
        let cfg = AdmissionConfig::default().with_easy_width(easy);
        let dw = plan_dispatch_widths_adaptive(&est, pool, &cfg, &curve);
        prop_assert_eq!(dw.widths.iter().sum::<usize>(), pool);
        prop_assert!(dw.widths.iter().all(|&w| w >= 1));
        prop_assert!(dw.wide_lanes <= dw.widths.len());
        prop_assert!(dw.widths.is_empty() || dw.wide_lanes >= 1);
        // Widths are emitted widest-first and every "wide" lane is at
        // least as wide as every lane past the wide prefix.
        prop_assert!(dw.widths.windows(2).all(|w| w[0] >= w[1]));
    }
}

/// Same calibration samples + same feedback stream => identical refit
/// lines => identical planned widths. This is the reproducibility
/// contract the cluster's same-seed tests build on.
#[test]
fn same_history_plans_identical_widths() {
    let samples = [(1usize, 7.9), (2usize, 4.3), (4usize, 2.9), (8usize, 2.5)];
    let curve_a = SpeedupCurve::from_times(&samples);
    let curve_b = SpeedupCurve::from_times(&samples);
    for w in [1usize, 2, 4, 8] {
        assert_eq!(
            curve_a.speedup(w).to_bits(),
            curve_b.speedup(w).to_bits(),
            "curve fit must be a pure function of its samples"
        );
    }

    let model_a = OnlineCostModel::new(256, 8);
    let model_b = OnlineCostModel::new(256, 8);
    // A deterministic pseudo-stream of (initial-BSF, observed-seconds)
    // pairs; enough to cross several refit boundaries at refit_every=8.
    let stream: Vec<(f64, f64)> = (0..40)
        .map(|i| {
            let f = ((i * 37) % 19) as f64 + 1.0;
            (f, 0.2 * f + 0.05 * ((i % 5) as f64))
        })
        .collect();
    for &(f, t) in &stream {
        model_a.record(f, t);
        model_b.record(f, t);
    }
    assert!(model_a.refits() > 0, "stream must cross a refit boundary");
    assert_eq!(model_a.refits(), model_b.refits());
    let (la, lb) = (model_a.line(), model_b.line());
    assert_eq!(la.slope.to_bits(), lb.slope.to_bits());
    assert_eq!(la.intercept.to_bits(), lb.intercept.to_bits());

    let features: Vec<f64> = (0..13).map(|i| ((i * 11) % 7) as f64 + 0.5).collect();
    let est_a: Vec<f64> = features.iter().map(|&f| model_a.estimate(f)).collect();
    let est_b: Vec<f64> = features.iter().map(|&f| model_b.estimate(f)).collect();
    assert_eq!(
        est_a.iter().map(|e| e.to_bits()).collect::<Vec<_>>(),
        est_b.iter().map(|e| e.to_bits()).collect::<Vec<_>>()
    );

    let cfg = AdmissionConfig::default();
    for pool in [1usize, 2, 4, 8] {
        let dw_a = plan_dispatch_widths_adaptive(&est_a, pool, &cfg, &curve_a);
        let dw_b = plan_dispatch_widths_adaptive(&est_b, pool, &cfg, &curve_b);
        assert_eq!(dw_a, dw_b, "pool={pool}");
    }
}
