//! The online feedback store and self-refitting predictors.
//!
//! The paper trains its predictors once on a small pilot and the seed
//! repo kept that shape: a ≤8-query pilot fits the Figure 4 linreg and
//! the Figure 6 sigmoid, and every later estimate comes from that
//! frozen fit. This module closes the loop: the engine reports every
//! finished query's `(feature, observed)` pair into a fixed-capacity
//! ring buffer, and the models refit from the ring at **deterministic
//! sample counts** (every `refit_every` pushes — never wall-clock), so
//! the same query stream always produces the same sequence of fits and
//! the bit-identity tests stay meaningful.
//!
//! Everything here is lock-free on the `std::sync` atomic subset
//! (`xtask lint` rule 8 holds this file to it, like `crates/service`):
//! the store is shared by engine workers, the cluster's steal manager,
//! and the service front-end, none of which may block on a predictor
//! mutex mid-query.

use crate::linreg::LinearRegression;
use crate::predictor::CostModel;
use crate::sigmoid::{SigmoidFit, ThresholdModel};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Fixed-capacity lock-free ring buffer of `(feature, observed)`
/// sample pairs. Writers overwrite the oldest slot once full; readers
/// snapshot whatever is currently resident. Pairs are stored as two
/// relaxed `f64`-bit atomics — a reader racing a writer can observe a
/// pair mid-overwrite, which is acceptable for refitting (one stale
/// point among `capacity` samples) and cannot tear an individual
/// `f64`.
#[derive(Debug)]
pub struct FeedbackStore {
    features: Box<[AtomicU64]>,
    observed: Box<[AtomicU64]>,
    /// Total pushes ever; `fetch_add` hands every writer a unique slot
    /// sequence number (slot = seq % capacity).
    pushed: AtomicUsize,
}

impl FeedbackStore {
    /// A store holding the most recent `capacity` samples.
    ///
    /// # Panics
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "feedback store needs capacity");
        FeedbackStore {
            features: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            observed: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            pushed: AtomicUsize::new(0),
        }
    }

    /// Maximum resident samples.
    pub fn capacity(&self) -> usize {
        self.features.len()
    }

    /// Total samples ever pushed (resident = `total().min(capacity())`).
    pub fn total(&self) -> usize {
        self.pushed.load(Ordering::Acquire)
    }

    /// Appends one sample and returns the total push count *after* this
    /// push — unique per push, so exactly one caller observes each
    /// refit threshold.
    pub fn push(&self, feature: f64, observed: f64) -> usize {
        let seq = self.pushed.fetch_add(1, Ordering::AcqRel);
        let slot = seq % self.features.len();
        self.features[slot].store(feature.to_bits(), Ordering::Relaxed);
        self.observed[slot].store(observed.to_bits(), Ordering::Relaxed);
        seq + 1
    }

    /// Copies the resident samples out (slot order; the refitters don't
    /// care about recency order, only membership).
    pub fn snapshot(&self) -> Vec<(f64, f64)> {
        let n = self.total().min(self.capacity());
        (0..n)
            .map(|i| {
                (
                    f64::from_bits(self.features[i].load(Ordering::Relaxed)),
                    f64::from_bits(self.observed[i].load(Ordering::Relaxed)),
                )
            })
            .collect()
    }
}

/// Mean absolute percentage error of a cost model over `(feature,
/// observed)` samples — the bench's before/after-refit metric.
/// Samples with non-positive observations are skipped; returns `None`
/// when nothing is scorable.
pub fn mape(model: &dyn CostModel, samples: &[(f64, f64)]) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for &(x, y) in samples {
        if y > 0.0 {
            sum += (model.estimate(x) - y).abs() / y;
            n += 1;
        }
    }
    (n > 0).then(|| sum / n as f64)
}

/// A [`CostModel`] that refits its Figure 4 line from a
/// [`FeedbackStore`] every `refit_every` samples. Until the first
/// refit (or when constructed unseeded) it is the identity estimate —
/// the same "initial BSF is the cost" default the PREDICT-* policies
/// fall back to without a trained model.
#[derive(Debug)]
pub struct OnlineCostModel {
    store: FeedbackStore,
    refit_every: usize,
    slope: AtomicU64,
    intercept: AtomicU64,
    refits: AtomicUsize,
}

impl OnlineCostModel {
    /// An unseeded model (identity line until the first refit).
    ///
    /// # Panics
    /// Panics on zero capacity or zero refit interval.
    pub fn new(capacity: usize, refit_every: usize) -> Self {
        assert!(refit_every >= 1, "refit interval must be positive");
        OnlineCostModel {
            store: FeedbackStore::new(capacity),
            refit_every,
            slope: AtomicU64::new(1.0f64.to_bits()),
            intercept: AtomicU64::new(0.0f64.to_bits()),
            refits: AtomicUsize::new(0),
        }
    }

    /// A model seeded from a pilot-trained regression line.
    pub fn seeded(line: LinearRegression, capacity: usize, refit_every: usize) -> Self {
        let m = Self::new(capacity, refit_every);
        m.slope.store(line.slope.to_bits(), Ordering::Relaxed);
        m.intercept.store(line.intercept.to_bits(), Ordering::Relaxed);
        m
    }

    /// Reports one finished query: `(feature, observed execution
    /// time)`. Refits at every `refit_every`-th push — the push
    /// counter hands out unique totals, so each refit point fires in
    /// exactly one caller and at a deterministic position in the
    /// sample stream.
    pub fn record(&self, feature: f64, observed: f64) {
        let total = self.store.push(feature, observed);
        if total.is_multiple_of(self.refit_every) {
            self.refit();
        }
    }

    fn refit(&self) {
        let samples = self.store.snapshot();
        if samples.len() < 2 {
            return;
        }
        let xs: Vec<f64> = samples.iter().map(|&(x, _)| x).collect();
        let ys: Vec<f64> = samples.iter().map(|&(_, y)| y).collect();
        let line = LinearRegression::fit(&xs, &ys);
        self.slope.store(line.slope.to_bits(), Ordering::Relaxed);
        self.intercept
            .store(line.intercept.to_bits(), Ordering::Relaxed);
        self.refits.fetch_add(1, Ordering::AcqRel);
    }

    /// The current fitted line (R² is not tracked online).
    pub fn line(&self) -> LinearRegression {
        LinearRegression {
            slope: f64::from_bits(self.slope.load(Ordering::Relaxed)),
            intercept: f64::from_bits(self.intercept.load(Ordering::Relaxed)),
            r2: 0.0,
        }
    }

    /// Number of refits performed so far.
    pub fn refits(&self) -> usize {
        self.refits.load(Ordering::Acquire)
    }

    /// Total samples recorded.
    pub fn samples(&self) -> usize {
        self.store.total()
    }

    /// The underlying sample ring (bench MAPE scoring).
    pub fn store(&self) -> &FeedbackStore {
        &self.store
    }
}

impl CostModel for OnlineCostModel {
    fn estimate(&self, initial_bsf: f64) -> f64 {
        let line = self.line();
        line.predict(initial_bsf).max(0.0)
    }
}

/// A per-query `TH` predictor that refits its Figure 6 sigmoid from
/// observed `(initial BSF, median queue size)` pairs every
/// `refit_every` samples. Before the first refit it answers from the
/// seed sigmoid (or, unseeded, a flat line at the seed threshold).
#[derive(Debug)]
pub struct OnlineThresholdModel {
    store: FeedbackStore,
    refit_every: usize,
    /// Sigmoid parameter bits: `m, M, b, c, d`.
    params: [AtomicU64; 5],
    division_factor: f64,
    refits: AtomicUsize,
}

impl OnlineThresholdModel {
    /// Wraps a pilot-trained threshold model.
    ///
    /// # Panics
    /// Panics on zero capacity or zero refit interval.
    pub fn seeded(seed: ThresholdModel, capacity: usize, refit_every: usize) -> Self {
        assert!(refit_every >= 1, "refit interval must be positive");
        let s = seed.sigmoid;
        OnlineThresholdModel {
            store: FeedbackStore::new(capacity),
            refit_every,
            params: [
                AtomicU64::new(s.m.to_bits()),
                AtomicU64::new(s.big_m.to_bits()),
                AtomicU64::new(s.b.to_bits()),
                AtomicU64::new(s.c.to_bits()),
                AtomicU64::new(s.d.to_bits()),
            ],
            division_factor: seed.division_factor,
            refits: AtomicUsize::new(0),
        }
    }

    /// Reports one finished query's `(initial BSF, median priority-queue
    /// size)` observation; refits at deterministic sample counts like
    /// [`OnlineCostModel::record`]. The sigmoid fit needs four points,
    /// so early refit points with fewer resident samples are skipped.
    pub fn record(&self, initial_bsf: f64, median_pq_size: f64) {
        let total = self.store.push(initial_bsf, median_pq_size);
        if total.is_multiple_of(self.refit_every) {
            let samples = self.store.snapshot();
            if samples.len() < 4 {
                return;
            }
            let xs: Vec<f64> = samples.iter().map(|&(x, _)| x).collect();
            let ys: Vec<f64> = samples.iter().map(|&(_, y)| y).collect();
            let fit = SigmoidFit::fit(&xs, &ys);
            for (slot, v) in self
                .params
                .iter()
                .zip([fit.m, fit.big_m, fit.b, fit.c, fit.d])
            {
                slot.store(v.to_bits(), Ordering::Relaxed);
            }
            self.refits.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// The current model as a plain [`ThresholdModel`].
    pub fn current(&self) -> ThresholdModel {
        let p: Vec<f64> = self
            .params
            .iter()
            .map(|a| f64::from_bits(a.load(Ordering::Relaxed)))
            .collect();
        ThresholdModel::new(
            SigmoidFit {
                m: p[0],
                big_m: p[1],
                b: p[2],
                c: p[3],
                d: p[4],
                sse: 0.0,
            },
            self.division_factor,
        )
    }

    /// Predicted `TH` under the current fit.
    pub fn predict_th(&self, initial_bsf: f64) -> usize {
        self.current().predict_th(initial_bsf)
    }

    /// Number of refits performed so far.
    pub fn refits(&self) -> usize {
        self.refits.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_and_snapshots() {
        let s = FeedbackStore::new(4);
        for i in 0..6 {
            s.push(i as f64, 10.0 * i as f64);
        }
        assert_eq!(s.total(), 6);
        let snap = s.snapshot();
        assert_eq!(snap.len(), 4);
        // Slots 0 and 1 were overwritten by pushes 4 and 5.
        assert!(snap.contains(&(4.0, 40.0)));
        assert!(snap.contains(&(5.0, 50.0)));
        assert!(snap.contains(&(2.0, 20.0)));
        assert!(!snap.contains(&(0.0, 0.0)) || snap.iter().filter(|&&(x, _)| x == 0.0).count() == 0);
    }

    #[test]
    fn unseeded_model_is_identity_until_refit() {
        let m = OnlineCostModel::new(64, 8);
        assert_eq!(m.estimate(3.5), 3.5);
        for i in 0..7 {
            m.record(i as f64, 2.0 * i as f64 + 5.0);
        }
        assert_eq!(m.refits(), 0, "below the refit point");
        assert_eq!(m.estimate(3.5), 3.5);
        m.record(7.0, 19.0);
        assert_eq!(m.refits(), 1, "refit fires exactly at sample 8");
        assert!((m.estimate(3.5) - 12.0).abs() < 1e-9, "fitted 2x+5");
    }

    #[test]
    fn refits_fire_at_deterministic_counts() {
        let m = OnlineCostModel::new(16, 4);
        for i in 0..12 {
            m.record(i as f64, i as f64);
            let expect = (i + 1) / 4;
            assert_eq!(m.refits(), expect, "after sample {}", i + 1);
        }
    }

    #[test]
    fn seeded_model_predicts_before_any_sample() {
        let line = LinearRegression {
            slope: 3.0,
            intercept: 1.0,
            r2: 1.0,
        };
        let m = OnlineCostModel::seeded(line, 8, 4);
        assert!((m.estimate(2.0) - 7.0).abs() < 1e-12);
        assert_eq!(m.line().slope, 3.0);
    }

    #[test]
    fn refit_sharpens_a_bad_seed() {
        let bad = LinearRegression {
            slope: -5.0,
            intercept: 100.0,
            r2: 0.0,
        };
        let m = OnlineCostModel::seeded(bad, 64, 16);
        let truth = |x: f64| 4.0 * x + 2.0;
        for i in 0..32 {
            let x = i as f64 * 0.5;
            m.record(x, truth(x));
        }
        assert!(m.refits() >= 1);
        let snap = m.store().snapshot();
        let after = mape(&m, &snap).unwrap();
        assert!(after < 0.01, "post-refit MAPE {after}");
    }

    #[test]
    fn mape_scores_identity_error() {
        let m = OnlineCostModel::new(8, 100);
        // Identity model vs observed 2x: |x - 2x| / 2x = 0.5 everywhere.
        let samples = vec![(1.0, 2.0), (3.0, 6.0)];
        assert!((mape(&m, &samples).unwrap() - 0.5).abs() < 1e-12);
        assert!(mape(&m, &[(1.0, 0.0)]).is_none(), "nothing scorable");
    }

    #[test]
    fn online_threshold_model_refits_sigmoid() {
        let seed = ThresholdModel::new(
            SigmoidFit {
                m: 160.0,
                big_m: 160.0,
                b: 1.0,
                c: 1.0,
                d: 0.0,
                sse: 0.0,
            },
            16.0,
        );
        let m = OnlineThresholdModel::seeded(seed, 64, 16);
        assert_eq!(m.predict_th(3.0), 10, "seed answers before refit");
        for i in 0..16 {
            let bsf = 1.0 + i as f64 * 0.4;
            let size = 50.0 + 400.0 / (1.0 + (-2.0 * (bsf - 4.0)).exp());
            m.record(bsf, size);
        }
        assert_eq!(m.refits(), 1);
        let easy = m.predict_th(1.0);
        let hard = m.predict_th(7.0);
        assert!(hard >= easy, "refitted sigmoid rises with BSF");
    }

    #[test]
    fn same_stream_same_fits() {
        let run = || {
            let m = OnlineCostModel::new(32, 8);
            for i in 0..24 {
                m.record(i as f64 * 0.3, i as f64 * 0.9 + 1.0);
            }
            let l = m.line();
            (l.slope.to_bits(), l.intercept.to_bits(), m.refits())
        };
        assert_eq!(run(), run(), "deterministic refit sequence");
    }
}
