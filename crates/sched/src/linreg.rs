//! Simple least-squares linear regression (the prediction model of
//! Figure 4: initial BSF → execution time).
//!
//! The paper notes "other prediction schemes can be used, as well"; the
//! regression is deliberately the simplest thing that captures the
//! BSF/time correlation.

/// A fitted line `y = slope * x + intercept` with its goodness of fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearRegression {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination R² in `[0, 1]` (0 when the variance
    /// of `y` is zero).
    pub r2: f64,
}

impl LinearRegression {
    /// Fits `y ~ x` by ordinary least squares.
    ///
    /// # Panics
    /// Panics if the slices differ in length or fewer than two points are
    /// given.
    pub fn fit(x: &[f64], y: &[f64]) -> Self {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        assert!(x.len() >= 2, "need at least two points");
        let n = x.len() as f64;
        let mx = x.iter().sum::<f64>() / n;
        let my = y.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for (&xi, &yi) in x.iter().zip(y) {
            let dx = xi - mx;
            let dy = yi - my;
            sxx += dx * dx;
            sxy += dx * dy;
            syy += dy * dy;
        }
        // A vertical cloud (all x equal) degenerates to the mean line.
        let slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
        let intercept = my - slope * mx;
        let r2 = if syy > 0.0 && sxx > 0.0 {
            (sxy * sxy) / (sxx * syy)
        } else {
            0.0
        };
        LinearRegression {
            slope,
            intercept,
            r2,
        }
    }

    /// Predicts `y` for a new `x`.
    #[inline]
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// Pearson correlation coefficient (signed square root of R²).
    pub fn correlation(&self) -> f64 {
        self.r2.sqrt() * self.slope.signum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_line() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 7.0).collect();
        let m = LinearRegression::fit(&x, &y);
        assert!((m.slope - 3.0).abs() < 1e-12);
        assert!((m.intercept - 7.0).abs() < 1e-12);
        assert!((m.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_has_high_r2() {
        let x: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 2.0 * v + 1.0 + if i % 2 == 0 { 0.05 } else { -0.05 })
            .collect();
        let m = LinearRegression::fit(&x, &y);
        assert!((m.slope - 2.0).abs() < 0.01);
        assert!(m.r2 > 0.99);
        assert!(m.correlation() > 0.99);
    }

    #[test]
    fn constant_y_gives_zero_slope() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![5.0, 5.0, 5.0];
        let m = LinearRegression::fit(&x, &y);
        assert_eq!(m.slope, 0.0);
        assert_eq!(m.intercept, 5.0);
        assert_eq!(m.r2, 0.0);
    }

    #[test]
    fn constant_x_degenerates_to_mean() {
        let x = vec![2.0, 2.0, 2.0];
        let y = vec![1.0, 2.0, 3.0];
        let m = LinearRegression::fit(&x, &y);
        assert_eq!(m.slope, 0.0);
        assert_eq!(m.predict(2.0), 2.0);
    }

    #[test]
    fn negative_correlation_sign() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| -v + 100.0).collect();
        let m = LinearRegression::fit(&x, &y);
        assert!(m.correlation() < -0.999);
    }
}
