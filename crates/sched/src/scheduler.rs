//! Query-scheduling policies (Section 3.1).
//!
//! All policies operate inside one replication group (every node of the
//! group can answer every query). The static policies produce an
//! up-front [`StaticSchedule`]; the dynamic policies produce an ordered
//! dispatch queue that the group coordinator serves on request — the
//! runtime side lives in `odyssey-cluster`.
//!
//! | Policy                | Estimates | Order                  | Dispatch |
//! |-----------------------|-----------|------------------------|----------|
//! | STATIC                | no        | input                  | static contiguous split |
//! | DYNAMIC               | no        | input                  | coordinator queue |
//! | PREDICT-ST-UNSORTED   | yes       | input                  | greedy min-load |
//! | PREDICT-ST            | yes       | descending estimate    | greedy min-load |
//! | PREDICT-DN            | yes       | descending estimate    | coordinator queue |

/// The scheduling policies evaluated in Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Equal contiguous query blocks per node.
    Static,
    /// Coordinator hands out the next query on request.
    Dynamic,
    /// Greedy min-load assignment in input order.
    PredictStUnsorted,
    /// Greedy min-load assignment in descending-estimate order.
    PredictSt,
    /// Coordinator queue sorted by descending estimate (Odyssey's
    /// default — the best performer in the paper).
    PredictDn,
}

impl SchedulerKind {
    /// Whether the policy needs per-query cost estimates.
    pub fn needs_predictions(&self) -> bool {
        matches!(
            self,
            SchedulerKind::PredictStUnsorted | SchedulerKind::PredictSt | SchedulerKind::PredictDn
        )
    }

    /// Whether dispatch is dynamic (coordinator-served).
    pub fn is_dynamic(&self) -> bool {
        matches!(self, SchedulerKind::Dynamic | SchedulerKind::PredictDn)
    }

    /// All policies, in the order the paper's figures list them.
    pub fn all() -> [SchedulerKind; 5] {
        [
            SchedulerKind::Static,
            SchedulerKind::Dynamic,
            SchedulerKind::PredictStUnsorted,
            SchedulerKind::PredictSt,
            SchedulerKind::PredictDn,
        ]
    }

    /// The paper's label for the policy (as used in Figure 10's legend).
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerKind::Static => "static",
            SchedulerKind::Dynamic => "dynamic",
            SchedulerKind::PredictStUnsorted => "predict-st-unsorted",
            SchedulerKind::PredictSt => "predict-st",
            SchedulerKind::PredictDn => "predict-dn",
        }
    }
}

/// A static assignment: `per_node[i]` lists the query indices node `i`
/// answers, in execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticSchedule {
    /// Query indices per node.
    pub per_node: Vec<Vec<usize>>,
}

impl StaticSchedule {
    /// Total scheduled queries.
    pub fn total(&self) -> usize {
        self.per_node.iter().map(|q| q.len()).sum()
    }

    /// Maximum estimated load across nodes (the makespan proxy).
    pub fn max_load(&self, estimates: &[f64]) -> f64 {
        self.per_node
            .iter()
            .map(|qs| qs.iter().map(|&q| estimates[q]).sum::<f64>())
            .fold(0.0, f64::max)
    }
}

/// STATIC: splits the query sequence into `n_nodes` contiguous
/// subsequences of (near-)equal length.
pub fn static_split(n_queries: usize, n_nodes: usize) -> StaticSchedule {
    assert!(n_nodes >= 1);
    let mut per_node = vec![Vec::new(); n_nodes];
    for (node, chunk) in per_node.iter_mut().enumerate() {
        let start = node * n_queries / n_nodes;
        let end = (node + 1) * n_queries / n_nodes;
        chunk.extend(start..end);
    }
    StaticSchedule { per_node }
}

/// PREDICT-ST-UNSORTED / PREDICT-ST: greedy min-load assignment.
///
/// Each node keeps a *load variable* summing its assigned estimates; each
/// query (taken in input order, or in descending-estimate order when
/// `sorted`) goes to the currently least-loaded node (ties to the lowest
/// node id — matching the paper's worked example in Section 3.1).
pub fn greedy_by_estimate(estimates: &[f64], n_nodes: usize, sorted: bool) -> StaticSchedule {
    assert!(n_nodes >= 1);
    let mut order: Vec<usize> = (0..estimates.len()).collect();
    if sorted {
        // Descending estimate; stable on ties to stay deterministic.
        order.sort_by(|&a, &b| estimates[b].total_cmp(&estimates[a]).then(a.cmp(&b)));
    }
    let mut per_node = vec![Vec::new(); n_nodes];
    let mut load = vec![0.0f64; n_nodes];
    for q in order {
        let node = load
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
            .map(|(i, _)| i)
            .expect("n_nodes >= 1");
        per_node[node].push(q);
        load[node] += estimates[q];
    }
    StaticSchedule { per_node }
}

/// Dispatch order for the dynamic policies: input order for DYNAMIC,
/// descending estimates for PREDICT-DN.
pub fn dynamic_order(estimates: &[f64], sorted: bool) -> Vec<usize> {
    let mut order: Vec<usize> = (0..estimates.len()).collect();
    if sorted {
        order.sort_by(|&a, &b| estimates[b].total_cmp(&estimates[a]).then(a.cmp(&b)));
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's worked example (Section 3.1): two nodes, estimates
    /// ES = {100, 50, 200, 250, 80}.
    const ES: [f64; 5] = [100.0, 50.0, 200.0, 250.0, 80.0];

    #[test]
    fn paper_example_unsorted() {
        let s = greedy_by_estimate(&ES, 2, false);
        assert_eq!(s.per_node[0], vec![0, 3], "sn1 gets q1, q4");
        assert_eq!(s.per_node[1], vec![1, 2, 4], "sn2 gets q2, q3, q5");
    }

    #[test]
    fn paper_example_sorted() {
        let s = greedy_by_estimate(&ES, 2, true);
        assert_eq!(s.per_node[0], vec![3, 4], "sn1 gets q4, q5");
        assert_eq!(s.per_node[1], vec![2, 0, 1], "sn2 gets q3, q1, q2");
    }

    #[test]
    fn paper_example_dynamic_order() {
        let order = dynamic_order(&ES, true);
        assert_eq!(order, vec![3, 2, 0, 4, 1], "descending estimates");
        assert_eq!(dynamic_order(&ES, false), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn static_split_is_contiguous_and_complete() {
        for n in [1usize, 5, 16, 17] {
            for nodes in [1usize, 2, 4, 8] {
                let s = static_split(n, nodes);
                assert_eq!(s.total(), n);
                let flat: Vec<usize> = s.per_node.iter().flatten().copied().collect();
                assert_eq!(flat, (0..n).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn greedy_assigns_every_query_once() {
        let est: Vec<f64> = (0..37).map(|i| ((i * 13) % 11) as f64 + 1.0).collect();
        for sorted in [false, true] {
            let s = greedy_by_estimate(&est, 4, sorted);
            let mut flat: Vec<usize> = s.per_node.iter().flatten().copied().collect();
            flat.sort_unstable();
            assert_eq!(flat, (0..37).collect::<Vec<_>>());
        }
    }

    #[test]
    fn sorted_greedy_balances_better_than_static_on_ramps() {
        // Progressively harder queries — the scenario where STATIC fails.
        let est: Vec<f64> = (0..32).map(|i| (i + 1) as f64).collect();
        let st = static_split(est.len(), 4);
        let greedy = greedy_by_estimate(&est, 4, true);
        assert!(
            greedy.max_load(&est) < st.max_load(&est),
            "greedy {} vs static {}",
            greedy.max_load(&est),
            st.max_load(&est)
        );
        // Sorted greedy is within 4/3 of the lower bound (LPT guarantee).
        let ideal: f64 = est.iter().sum::<f64>() / 4.0;
        assert!(greedy.max_load(&est) <= ideal * 4.0 / 3.0 + est[31]);
    }

    #[test]
    fn scheduler_kind_metadata() {
        assert!(SchedulerKind::PredictDn.needs_predictions());
        assert!(SchedulerKind::PredictDn.is_dynamic());
        assert!(!SchedulerKind::Static.needs_predictions());
        assert!(!SchedulerKind::PredictSt.is_dynamic());
        assert_eq!(SchedulerKind::all().len(), 5);
        assert_eq!(SchedulerKind::Static.label(), "static");
    }
}
