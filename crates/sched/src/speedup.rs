//! The measured per-index speedup curve (Figure 8): how much faster one
//! query runs on `w` workers than on one.
//!
//! The paper's scheduling power comes from knowing this curve *per
//! machine and per index* instead of assuming linear scaling: the flat
//! region past the saturation knee is exactly where giving a query the
//! full pool wastes workers that narrow lanes could use. The engine
//! measures a few probe queries at widths `{1, 2, 4, …, pool}` at
//! warmup ([`BatchEngine::calibrate`]'s samples land here), and the
//! curve interpolates between the measured points with a saturating
//! Amdahl-style model
//!
//! ```text
//! S(w) = w / (1 + σ · (w − 1))
//! ```
//!
//! fitted for extrapolation beyond the largest probed width (`σ = 0`
//! is linear scaling, `σ = 1` is no scaling at all).
//!
//! [`BatchEngine::calibrate`]: ../odyssey_core/search/engine/struct.BatchEngine.html

/// A fitted speedup-vs-width curve for one index on one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupCurve {
    /// Measured `(width, speedup)` samples, width ascending, starting
    /// at `(1, 1.0)`. Monotone non-decreasing and capped at `w` (a
    /// probe can't observe super-linear scaling reliably enough to
    /// plan on it).
    samples: Vec<(usize, f64)>,
    /// Fitted contention coefficient of the saturating model.
    sigma: f64,
}

impl SpeedupCurve {
    /// The ideal linear curve (`speedup(w) = w`): the neutral fallback
    /// when no calibration has run.
    pub fn linear() -> Self {
        SpeedupCurve {
            samples: vec![(1, 1.0)],
            sigma: 0.0,
        }
    }

    /// Builds the curve from measured `(width, wall-time)` probe
    /// samples. The width-1 sample anchors the scale; samples are
    /// sanitized to a monotone, at-most-linear speedup (measurement
    /// noise must not convince the solver that 4 workers beat 8).
    ///
    /// # Panics
    /// Panics if no width-1 sample is present or any time is
    /// non-positive.
    pub fn from_times(times: &[(usize, f64)]) -> Self {
        let t1 = times
            .iter()
            .find(|&&(w, _)| w == 1)
            .map(|&(_, t)| t)
            .expect("calibration must probe width 1");
        assert!(
            times.iter().all(|&(_, t)| t > 0.0),
            "probe times must be positive"
        );
        let mut samples: Vec<(usize, f64)> = times
            .iter()
            .map(|&(w, t)| (w, (t1 / t).min(w as f64)))
            .collect();
        samples.sort_by_key(|&(w, _)| w);
        samples.dedup_by_key(|&mut (w, _)| w);
        // Monotone envelope: a wider group never plans slower than a
        // narrower one.
        let mut best = 0.0f64;
        for s in &mut samples {
            best = best.max(s.1);
            s.1 = best;
        }
        let sigma = fit_sigma(&samples);
        SpeedupCurve { samples, sigma }
    }

    /// The measured `(width, speedup)` samples (bench emission).
    pub fn samples(&self) -> &[(usize, f64)] {
        &self.samples
    }

    /// The fitted contention coefficient `σ` of the saturating model.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Predicted speedup of one query on a `width`-worker lane:
    /// piecewise-linear between measured samples, the fitted model
    /// (rescaled through the last sample) beyond them.
    ///
    /// # Panics
    /// Panics on `width == 0`.
    pub fn speedup(&self, width: usize) -> f64 {
        assert!(width >= 1, "a lane has at least one worker");
        let w = width as f64;
        let &(last_w, last_s) = self.samples.last().expect("curve has samples");
        if width >= last_w {
            // Extrapolate with the model, anchored so the curve stays
            // continuous at the last measured point.
            let anchor = model(self.sigma, last_w as f64);
            return (last_s * model(self.sigma, w) / anchor).min(w).max(last_s);
        }
        match self.samples.binary_search_by_key(&width, |&(sw, _)| sw) {
            Ok(i) => self.samples[i].1,
            Err(i) => {
                // `width` lies strictly between samples i-1 and i
                // (width >= 1 and (1, 1.0) is always present, so i >= 1).
                let (w0, s0) = self.samples[i - 1];
                let (w1, s1) = self.samples[i];
                let f = (w - w0 as f64) / (w1 - w0) as f64;
                s0 + f * (s1 - s0)
            }
        }
    }

    /// Predicted wall-time of a query with cost estimate `cost` on a
    /// `width`-worker lane.
    #[inline]
    pub fn time_at(&self, cost: f64, width: usize) -> f64 {
        cost / self.speedup(width)
    }
}

/// The saturating model `S(w) = w / (1 + σ (w − 1))`.
fn model(sigma: f64, w: f64) -> f64 {
    w / (1.0 + sigma * (w - 1.0))
}

/// Least-squares fit of `σ` over the sanitized samples: deterministic
/// coarse grid then bisection refinement (no RNG, no wall-clock — the
/// same samples always fit the same curve).
fn fit_sigma(samples: &[(usize, f64)]) -> f64 {
    let sse = |sigma: f64| -> f64 {
        samples
            .iter()
            .map(|&(w, s)| {
                let r = model(sigma, w as f64) - s;
                r * r
            })
            .sum()
    };
    let mut best = 0.0f64;
    let mut best_sse = sse(0.0);
    for i in 1..=100 {
        let sigma = i as f64 / 100.0;
        let e = sse(sigma);
        if e < best_sse {
            best_sse = e;
            best = sigma;
        }
    }
    let mut step = 0.005f64;
    for _ in 0..30 {
        let mut improved = false;
        for cand in [best - step, best + step] {
            let c = cand.clamp(0.0, 1.0);
            let e = sse(c);
            if e < best_sse {
                best_sse = e;
                best = c;
                improved = true;
            }
        }
        if !improved {
            step *= 0.5;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_curve_is_identity() {
        let c = SpeedupCurve::linear();
        assert_eq!(c.speedup(1), 1.0);
        assert_eq!(c.speedup(4), 4.0);
        assert_eq!(c.speedup(16), 16.0);
        assert_eq!(c.time_at(8.0, 8), 1.0);
    }

    #[test]
    fn from_times_normalizes_and_interpolates() {
        // Perfect 2x scaling to width 2, flat beyond.
        let c = SpeedupCurve::from_times(&[(1, 8.0), (2, 4.0), (4, 4.0)]);
        assert!((c.speedup(1) - 1.0).abs() < 1e-12);
        assert!((c.speedup(2) - 2.0).abs() < 1e-12);
        assert!((c.speedup(4) - 2.0).abs() < 1e-12);
        assert!((c.speedup(3) - 2.0).abs() < 1e-12, "interpolated");
    }

    #[test]
    fn noisy_samples_stay_monotone_and_sublinear() {
        // Width 4 "measured" faster than linear and faster than width 8.
        let c = SpeedupCurve::from_times(&[(1, 10.0), (2, 5.5), (4, 1.0), (8, 2.0)]);
        let mut prev = 0.0;
        for w in 1..=8 {
            let s = c.speedup(w);
            assert!(s >= prev, "monotone at width {w}");
            assert!(s <= w as f64 + 1e-12, "at most linear at width {w}");
            prev = s;
        }
    }

    #[test]
    fn extrapolation_saturates_with_fitted_sigma() {
        // A strongly saturating measurement: almost no gain past 2.
        let c = SpeedupCurve::from_times(&[(1, 10.0), (2, 6.0), (4, 5.5), (8, 5.4)]);
        assert!(c.sigma() > 0.1, "saturation detected, sigma={}", c.sigma());
        let s16 = c.speedup(16);
        let s8 = c.speedup(8);
        assert!(s16 >= s8, "extrapolation stays monotone");
        assert!(s16 < 8.0, "extrapolation stays saturated");
    }

    #[test]
    fn near_linear_measurement_fits_small_sigma() {
        let c = SpeedupCurve::from_times(&[(1, 8.0), (2, 4.0), (4, 2.0), (8, 1.0)]);
        assert!(c.sigma() < 0.02, "sigma={}", c.sigma());
        assert!(c.speedup(16) > 10.0, "extrapolates near-linearly");
    }

    #[test]
    fn deterministic_fit() {
        let t = [(1, 9.0), (2, 5.0), (4, 3.0), (8, 2.5)];
        let a = SpeedupCurve::from_times(&t);
        let b = SpeedupCurve::from_times(&t);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "width 1")]
    fn rejects_missing_anchor() {
        SpeedupCurve::from_times(&[(2, 4.0), (4, 2.0)]);
    }
}
