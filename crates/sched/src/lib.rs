//! # odyssey-sched
//!
//! Query-cost prediction and query-scheduling policies (Section 3.1 and
//! Figure 4 of the Odyssey paper).
//!
//! The key empirical observation the paper builds on: *queries with a
//! high initial BSF (the approximate-search answer) tend to have high
//! execution times*. [`linreg`] fits the linear model of Figure 4;
//! [`predictor`] wraps it into a per-query cost estimate; [`scheduler`]
//! implements the five policies the evaluation compares (STATIC, DYNAMIC,
//! PREDICT-ST-UNSORTED, PREDICT-ST, PREDICT-DN).
//!
//! [`sigmoid`] fits the 4-parameter sigmoid of Figure 6a that predicts a
//! good priority-queue size threshold `TH` from the initial BSF.
//!
//! [`admission`] turns the same predictions into *inter-query*
//! concurrency decisions: each query's worker-group width and the
//! packing of a batch into the batch engine's concurrent lanes.
//!
//! [`speedup`] holds the measured speedup-vs-width curve (Figure 8)
//! the engine calibrates at warmup, and [`admission`]'s
//! `plan_lanes_adaptive` / `plan_dispatch_widths_adaptive` solve for
//! the makespan-optimal lane-width mix under it. [`feedback`] closes
//! the prediction loop: a lock-free ring of observed `(feature, time)`
//! samples from which the linreg/sigmoid models refit at deterministic
//! sample counts.

#![forbid(unsafe_code)]


pub mod admission;
pub mod feedback;
pub mod linreg;
pub mod predictor;
pub mod scheduler;
pub mod sigmoid;
pub mod speedup;

pub use admission::{
    plan_dispatch_widths, plan_dispatch_widths_adaptive, plan_lanes, plan_lanes_adaptive,
    predicted_makespan, AdmissionConfig, AdmissionController, DispatchWidths,
};
pub use feedback::{mape, FeedbackStore, OnlineCostModel, OnlineThresholdModel};
pub use linreg::LinearRegression;
pub use predictor::{CostModel, QueryCostPredictor};
pub use scheduler::{SchedulerKind, StaticSchedule};
pub use sigmoid::{SigmoidFit, ThresholdModel};
pub use speedup::SpeedupCurve;
