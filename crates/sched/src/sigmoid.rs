//! Sigmoid fitting for the priority-queue size threshold `TH`
//! (Section 3.2.1, Figure 6).
//!
//! The paper observes a correlation between a query's initial BSF and the
//! *median size* of the priority queues produced while answering it, and
//! fits the parameterized sigmoid
//!
//! ```text
//! f(Z) = m + (M - m) / (1 + b * exp(-c * (Z - d)))
//! ```
//!
//! The per-query threshold is the sigmoid's median-size estimate divided
//! by a dataset-specific factor (16 for Seismic, Figure 6b).

/// A fitted sigmoid `f(Z) = m + (M - m) / (1 + b e^{-c (Z - d)})`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SigmoidFit {
    /// Lower asymptote.
    pub m: f64,
    /// Upper asymptote.
    pub big_m: f64,
    /// Shape parameter `b` (positive).
    pub b: f64,
    /// Growth rate `c` (positive).
    pub c: f64,
    /// Midpoint `d`.
    pub d: f64,
    /// Sum of squared residuals of the fit.
    pub sse: f64,
}

impl SigmoidFit {
    /// Evaluates the sigmoid.
    #[inline]
    pub fn eval(&self, z: f64) -> f64 {
        self.m + (self.big_m - self.m) / (1.0 + self.b * (-self.c * (z - self.d)).exp())
    }

    /// Fits the sigmoid to `(x, y)` points by a deterministic coarse grid
    /// search over `(b, c, d)` followed by local refinement; the
    /// asymptotes are anchored to the observed `y` range.
    ///
    /// # Panics
    /// Panics on length mismatch or fewer than four points.
    pub fn fit(x: &[f64], y: &[f64]) -> Self {
        assert_eq!(x.len(), y.len());
        assert!(x.len() >= 4, "need at least four points to fit a sigmoid");
        let (ymin, ymax) = y
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
        let (xmin, xmax) = x
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
        let xspan = (xmax - xmin).max(1e-9);
        let sse_of = |b: f64, c: f64, d: f64| -> f64 {
            let s = SigmoidFit {
                m: ymin,
                big_m: ymax,
                b,
                c,
                d,
                sse: 0.0,
            };
            x.iter()
                .zip(y)
                .map(|(&xi, &yi)| {
                    let r = s.eval(xi) - yi;
                    r * r
                })
                .sum()
        };
        let mut best = (1.0f64, 1.0f64, (xmin + xmax) / 2.0);
        let mut best_sse = f64::INFINITY;
        for bi in 0..5 {
            let b = 0.25 * 2f64.powi(bi); // 0.25 .. 4
            for ci in 0..12 {
                let c = (0.5 * 1.6f64.powi(ci)) / xspan; // scale-aware rates
                for di in 0..=16 {
                    let d = xmin + xspan * di as f64 / 16.0;
                    let s = sse_of(b, c, d);
                    if s < best_sse {
                        best_sse = s;
                        best = (b, c, d);
                    }
                }
            }
        }
        // Local coordinate refinement.
        let (mut b, mut c, mut d) = best;
        let mut step_b = b * 0.5;
        let mut step_c = c * 0.5;
        let mut step_d = xspan / 16.0;
        for _ in 0..40 {
            let mut improved = false;
            for (param, step) in [(0usize, step_b), (1, step_c), (2, step_d)] {
                for dir in [-1.0f64, 1.0] {
                    let (nb, nc, nd) = match param {
                        0 => ((b + dir * step).max(1e-6), c, d),
                        1 => (b, (c + dir * step).max(1e-9), d),
                        _ => (b, c, d + dir * step),
                    };
                    let s = sse_of(nb, nc, nd);
                    if s < best_sse {
                        best_sse = s;
                        b = nb;
                        c = nc;
                        d = nd;
                        improved = true;
                    }
                }
            }
            if !improved {
                step_b *= 0.5;
                step_c *= 0.5;
                step_d *= 0.5;
            }
        }
        SigmoidFit {
            m: ymin,
            big_m: ymax,
            b,
            c,
            d,
            sse: best_sse,
        }
    }
}

/// The per-query `TH` predictor: sigmoid estimate of the median queue
/// size, divided by a dataset-specific factor (Figure 6b).
#[derive(Debug, Clone, Copy)]
pub struct ThresholdModel {
    /// The fitted BSF → median-queue-size sigmoid.
    pub sigmoid: SigmoidFit,
    /// Division factor applied to the estimate.
    pub division_factor: f64,
}

impl ThresholdModel {
    /// Builds the model; the paper's Seismic configuration uses factor 16.
    pub fn new(sigmoid: SigmoidFit, division_factor: f64) -> Self {
        assert!(division_factor > 0.0);
        ThresholdModel {
            sigmoid,
            division_factor,
        }
    }

    /// Trains the sigmoid from per-query `(initial BSF, median queue
    /// size)` observations.
    pub fn train(initial_bsfs: &[f64], median_pq_sizes: &[f64], division_factor: f64) -> Self {
        Self::new(SigmoidFit::fit(initial_bsfs, median_pq_sizes), division_factor)
    }

    /// Predicted threshold for a query with the given initial BSF
    /// (always at least 1 so queues stay well-formed).
    pub fn predict_th(&self, initial_bsf: f64) -> usize {
        let est = self.sigmoid.eval(initial_bsf) / self.division_factor;
        est.round().max(1.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sigmoid(m: f64, big_m: f64, b: f64, c: f64, d: f64, xs: &[f64]) -> Vec<f64> {
        let s = SigmoidFit {
            m,
            big_m,
            b,
            c,
            d,
            sse: 0.0,
        };
        xs.iter().map(|&x| s.eval(x)).collect()
    }

    #[test]
    fn eval_limits() {
        let s = SigmoidFit {
            m: 2.0,
            big_m: 10.0,
            b: 1.0,
            c: 1.0,
            d: 0.0,
            sse: 0.0,
        };
        assert!((s.eval(-100.0) - 2.0).abs() < 1e-9);
        assert!((s.eval(100.0) - 10.0).abs() < 1e-9);
        assert!((s.eval(0.0) - 6.0).abs() < 1e-9, "midpoint = (m+M)/2 at b=1");
    }

    #[test]
    fn fit_recovers_clean_sigmoid() {
        let xs: Vec<f64> = (0..60).map(|i| i as f64 / 3.0).collect();
        let ys = sample_sigmoid(100.0, 5000.0, 1.0, 0.8, 10.0, &xs);
        let fit = SigmoidFit::fit(&xs, &ys);
        // Predictions must be close even if parameters trade off.
        for (&x, &y) in xs.iter().zip(&ys) {
            assert!(
                (fit.eval(x) - y).abs() < 0.05 * (5000.0 - 100.0),
                "x={x}: {} vs {y}",
                fit.eval(x)
            );
        }
    }

    #[test]
    fn fit_is_monotone_like_its_data() {
        let xs: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let ys = sample_sigmoid(0.0, 1.0, 2.0, 0.3, 20.0, &xs);
        let fit = SigmoidFit::fit(&xs, &ys);
        let lo = fit.eval(0.0);
        let hi = fit.eval(39.0);
        assert!(hi > lo, "fitted curve must rise with the data");
    }

    #[test]
    fn threshold_model_divides_and_clamps() {
        let s = SigmoidFit {
            m: 160.0,
            big_m: 160.0,
            b: 1.0,
            c: 1.0,
            d: 0.0,
            sse: 0.0,
        };
        let model = ThresholdModel::new(s, 16.0);
        assert_eq!(model.predict_th(3.0), 10);
        let tiny = ThresholdModel::new(s, 1e9);
        assert_eq!(tiny.predict_th(3.0), 1, "clamped to >= 1");
    }

    #[test]
    fn train_produces_usable_thresholds() {
        // Synthetic: median queue size grows with BSF.
        let bsfs: Vec<f64> = (0..30).map(|i| 1.0 + i as f64 * 0.2).collect();
        let sizes: Vec<f64> = bsfs.iter().map(|&b| 50.0 + 400.0 / (1.0 + (-2.0 * (b - 4.0)).exp())).collect();
        let model = ThresholdModel::train(&bsfs, &sizes, 16.0);
        let th_easy = model.predict_th(1.0);
        let th_hard = model.predict_th(7.0);
        assert!(th_easy >= 1);
        assert!(th_hard >= th_easy, "harder queries get larger thresholds");
    }
}
