//! Prediction-driven admission: deciding each query's worker-group
//! width and packing a batch into concurrent lanes.
//!
//! Odyssey exploits two axes of parallelism: *intra*-query (all of a
//! node's workers on one query) and *inter*-query (the cluster answers
//! many queries at once across nodes). The same trade-off exists inside
//! one node: an easy query's speedup saturates at one or two workers —
//! per-query setup and barrier synchronization dominate — while a hard
//! query profits from the whole pool. The admission controller uses the
//! existing cost predictors (the initial-BSF regression of Figure 4, or
//! the raw initial BSF itself, which is monotone in cost) to classify
//! each query and emit a
//! [`ConcurrentPlan`](odyssey_core::search::multiq::ConcurrentPlan):
//!
//! * **hard** queries (estimate above the admission cutoff) form one
//!   full-pool round in descending-estimate order — exactly PREDICT-DN
//!   restricted to the hard tier, preserving the paper's
//!   hardest-first dispatch where intra-query parallelism matters;
//! * **easy** queries form a second round of narrow lanes
//!   ([`AdmissionConfig::easy_width`] workers each) and are packed onto
//!   lanes greedily by descending estimate onto the least-loaded lane
//!   (LPT — the same greedy the PREDICT-ST scheduler uses across
//!   nodes), so lane makespans balance. Estimates are still estimates,
//!   so plans default to **intra-round re-admission**
//!   ([`AdmissionConfig::readmission`]): a lane that drains early
//!   claims queued queries from the round's still-loaded lanes at run
//!   time instead of idling at the round barrier.
//!
//! The controller also carries the sigmoid threshold model of Figure 6
//! ([`ThresholdModel`]) and predicts a per-query priority-queue
//! threshold `TH` alongside the width — the per-query tuning the batch
//! engine threads through [`BatchQuery::params`].
//!
//! [`BatchQuery::params`]: odyssey_core::search::engine::BatchQuery

use crate::sigmoid::ThresholdModel;
use crate::speedup::SpeedupCurve;
use odyssey_core::search::multiq::{ConcurrentPlan, LaneSpec, RoundSpec};

/// Tuning knobs of the admission controller.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Worker-group width for predicted-easy queries (the paper-ish
    /// sweet spot is 1–2: easy queries are setup-dominated).
    pub easy_width: usize,
    /// A query is **hard** when its estimate exceeds
    /// `hard_ratio × median(estimates)`. With every estimate equal
    /// (e.g. the unit estimates of non-predictive policies) nothing
    /// clears the ratio and the whole batch is admitted concurrently.
    pub hard_ratio: f64,
    /// Absolute estimate cutoff overriding the ratio rule when set.
    pub hard_cutoff: Option<f64>,
    /// Upper bound on concurrent lanes (`usize::MAX` = only limited by
    /// the pool).
    pub max_lanes: usize,
    /// Intra-round re-admission: lanes that drain early claim queued
    /// queries from the round's still-loaded lanes instead of idling at
    /// the round barrier (see
    /// [`RoundSpec::readmission`](odyssey_core::search::multiq::RoundSpec)).
    pub readmission: bool,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            easy_width: 2,
            hard_ratio: 2.0,
            hard_cutoff: None,
            max_lanes: usize::MAX,
            readmission: true,
        }
    }
}

impl AdmissionConfig {
    /// Sets the easy-query group width.
    pub fn with_easy_width(mut self, w: usize) -> Self {
        assert!(w >= 1);
        self.easy_width = w;
        self
    }

    /// Sets the hard/easy median ratio.
    pub fn with_hard_ratio(mut self, r: f64) -> Self {
        assert!(r > 0.0);
        self.hard_ratio = r;
        self
    }

    /// Sets an absolute hardness cutoff.
    pub fn with_hard_cutoff(mut self, c: f64) -> Self {
        self.hard_cutoff = Some(c);
        self
    }

    /// Caps the number of concurrent lanes.
    pub fn with_max_lanes(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.max_lanes = n;
        self
    }

    /// Toggles intra-round re-admission.
    pub fn with_readmission(mut self, on: bool) -> Self {
        self.readmission = on;
        self
    }

    /// The estimate value above which a query is considered hard.
    fn cutoff(&self, estimates: &[f64]) -> f64 {
        if let Some(c) = self.hard_cutoff {
            return c;
        }
        let mut sorted: Vec<f64> = estimates.to_vec();
        sorted.sort_by(f64::total_cmp);
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or(0.0);
        self.hard_ratio * median
    }
}

/// Builds a [`ConcurrentPlan`] for a `pool`-thread engine from
/// per-query cost `estimates` (any monotone proxy: predicted seconds or
/// the raw initial BSF).
///
/// The returned plan partitions the pool in every round and names each
/// query exactly once (validated by the engine before execution; the
/// property is also covered by this workspace's proptest suite).
pub fn plan_lanes(estimates: &[f64], pool: usize, config: &AdmissionConfig) -> ConcurrentPlan {
    let pool = pool.max(1);
    if estimates.is_empty() {
        return ConcurrentPlan::default();
    }
    let cutoff = config.cutoff(estimates);
    let mut hard: Vec<usize> = (0..estimates.len())
        .filter(|&q| estimates[q] > cutoff)
        .collect();
    let mut easy: Vec<usize> = (0..estimates.len())
        .filter(|&q| estimates[q] <= cutoff)
        .collect();
    // Descending estimate, stable on ties — the PREDICT-DN order.
    let desc = |order: &mut Vec<usize>| {
        order.sort_by(|&a, &b| estimates[b].total_cmp(&estimates[a]).then(a.cmp(&b)));
    };
    desc(&mut hard);
    desc(&mut easy);

    let mut rounds = Vec::new();
    if !hard.is_empty() {
        // A single full-pool lane has no siblings to re-admit from; the
        // flag only matters once plans grow multi-lane hard tiers.
        let mut round = RoundSpec::new(vec![LaneSpec {
            width: pool,
            queries: hard,
        }]);
        round.readmission = config.readmission;
        rounds.push(round);
    }
    if !easy.is_empty() {
        rounds.push(easy_round(&easy, estimates, pool, config));
    }
    ConcurrentPlan { rounds }
}

/// Packs the easy tier into narrow lanes: as many `easy_width` groups
/// as the pool affords (capped by the query count and `max_lanes`;
/// remainder workers go to the first lanes), queries LPT-assigned to
/// the least-loaded lane by estimate.
fn easy_round(
    easy_desc: &[usize],
    estimates: &[f64],
    pool: usize,
    config: &AdmissionConfig,
) -> RoundSpec {
    let n_lanes = (pool / config.easy_width.clamp(1, pool))
        .min(easy_desc.len())
        .min(config.max_lanes)
        .max(1);
    let base = pool / n_lanes;
    let extra = pool % n_lanes;
    let mut lanes: Vec<LaneSpec> = (0..n_lanes)
        .map(|l| LaneSpec {
            width: base + usize::from(l < extra),
            queries: Vec::new(),
        })
        .collect();
    let mut load = vec![0.0f64; n_lanes];
    for &q in easy_desc {
        // Least-loaded lane; ties (e.g. all-zero estimates) break by
        // queue length so queries round-robin instead of piling onto
        // lane 0 — with `n_lanes <= |easy|` no lane stays empty.
        let lane = load
            .iter()
            .enumerate()
            .min_by(|a, b| {
                a.1.total_cmp(b.1)
                    .then(lanes[a.0].queries.len().cmp(&lanes[b.0].queries.len()))
                    .then(a.0.cmp(&b.0))
            })
            .map(|(i, _)| i)
            .expect("n_lanes >= 1");
        lanes[lane].queries.push(q);
        load[lane] += estimates[q];
    }
    let mut round = RoundSpec::new(lanes);
    round.readmission = config.readmission;
    round
}

/// A pool partition for the continuous-dispatch path (the serving
/// loop): lane widths plus how many of the leading lanes are **wide**
/// (full-pool-share lanes that should claim hardest-first, while the
/// narrow tail claims easiest-first from the other end of the queue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchWidths {
    /// Lane widths; always sums to the pool size, wide lanes first.
    pub widths: Vec<usize>,
    /// How many leading entries of `widths` are wide lanes.
    pub wide_lanes: usize,
}

/// Partitions a `pool`-thread engine into continuous-dispatch lanes
/// from the same hardness classification [`plan_lanes`] uses — but for
/// a *stream*, where lanes claim queries one at a time instead of
/// executing a pre-packed plan.
///
/// * No hard tier in the estimates → all-narrow lanes of
///   [`AdmissionConfig::easy_width`] (the `easy_round` shape), zero
///   wide lanes.
/// * All hard → one full-pool lane.
/// * Mixed → one wide lane on half the pool (hardest-first claims) and
///   narrow `easy_width` lanes on the rest (easiest-first claims); if
///   half the pool can't fit even one narrow lane, the whole pool goes
///   wide.
///
/// Unlike [`plan_lanes`] the estimates here are only a *tier sample*
/// (e.g. the last window of served queries); an empty sample behaves
/// as all-easy, since a stream with no history has no hard evidence.
pub fn plan_dispatch_widths(
    estimates: &[f64],
    pool: usize,
    config: &AdmissionConfig,
) -> DispatchWidths {
    let pool = pool.max(1);
    let cutoff = config.cutoff(estimates);
    let n_hard = estimates.iter().filter(|&&e| e > cutoff).count();
    let n_easy = estimates.len() - n_hard;

    let narrow = |budget: usize| -> Vec<usize> {
        let width = config.easy_width.clamp(1, budget);
        let n_lanes = (budget / width).min(config.max_lanes).max(1);
        let base = budget / n_lanes;
        let extra = budget % n_lanes;
        (0..n_lanes).map(|l| base + usize::from(l < extra)).collect()
    };

    if n_hard == 0 {
        // All-easy stream (or no evidence yet): narrow lanes maximize
        // inter-query concurrency.
        DispatchWidths {
            widths: narrow(pool),
            wide_lanes: 0,
        }
    } else if n_easy == 0 {
        DispatchWidths {
            widths: vec![pool],
            wide_lanes: 1,
        }
    } else {
        let narrow_budget = pool / 2;
        if narrow_budget < config.easy_width.clamp(1, pool) {
            // Pool too small to split: the wide lane serves both tiers.
            return DispatchWidths {
                widths: vec![pool],
                wide_lanes: 1,
            };
        }
        let tail = narrow(narrow_budget);
        let mut widths = vec![pool - tail.iter().sum::<usize>()];
        widths.extend(tail);
        DispatchWidths {
            widths,
            wide_lanes: 1,
        }
    }
}

/// Upper bound on the candidate partitions the makespan solver
/// enumerates — a determinism-preserving guard for absurdly wide
/// pools, far above anything the simulated nodes use (a 16-thread
/// pool has 36 power-of-two partitions).
const MAX_SOLVER_PARTITIONS: usize = 20_000;

/// Enumerates candidate width partitions of `pool` (descending parts
/// drawn from the powers of two plus `easy_width` and the pool itself,
/// at most `max_lanes` parts) and returns the one minimizing the LPT
/// makespan of `costs_desc` under the measured speedup `curve`.
fn solve_widths(
    costs_desc: &[f64],
    pool: usize,
    config: &AdmissionConfig,
    curve: &SpeedupCurve,
) -> Vec<usize> {
    let mut parts: Vec<usize> = std::iter::successors(Some(1usize), |&w| Some(w * 2))
        .take_while(|&w| w <= pool)
        .collect();
    for extra in [pool, config.easy_width.clamp(1, pool)] {
        if !parts.contains(&extra) {
            parts.push(extra);
        }
    }
    parts.sort_unstable_by(|a, b| b.cmp(a));
    let max_lanes = config.max_lanes.min(costs_desc.len().max(1));

    let mut best: Option<(f64, Vec<usize>)> = None;
    let mut stack = vec![(Vec::new(), pool, 0usize)];
    let mut visited = 0usize;
    while let Some((widths, left, from)) = stack.pop() {
        if left == 0 {
            visited += 1;
            let makespan = predicted_makespan(costs_desc, &widths, curve);
            // Strict `<` keeps the tie-break deterministic: the DFS
            // visits fewer-lane (wider-part) partitions first, so ties
            // resolve toward wider lanes.
            let better = best.as_ref().is_none_or(|(m, _)| makespan < *m);
            if better {
                best = Some((makespan, widths));
            }
            if visited >= MAX_SOLVER_PARTITIONS {
                break;
            }
            continue;
        }
        if widths.len() >= max_lanes {
            continue;
        }
        // Push in reverse so the widest usable part is explored first.
        for i in (from..parts.len()).rev() {
            let w = parts[i];
            if w <= left {
                let mut next = widths.clone();
                next.push(w);
                stack.push((next, left - w, i));
            }
        }
    }
    best.map(|(_, w)| w).unwrap_or_else(|| vec![pool])
}

/// The LPT makespan of `costs_desc` (descending estimates) over lanes
/// of the given widths: each query goes to the lane it would finish
/// earliest on, a lane of width `w` working through its queue at the
/// curve's `speedup(w)`.
pub fn predicted_makespan(costs_desc: &[f64], widths: &[usize], curve: &SpeedupCurve) -> f64 {
    let speedups: Vec<f64> = widths.iter().map(|&w| curve.speedup(w)).collect();
    let mut load = vec![0.0f64; widths.len()];
    for &c in costs_desc {
        let lane = (0..widths.len())
            .min_by(|&a, &b| {
                let fa = (load[a] + c) / speedups[a];
                let fb = (load[b] + c) / speedups[b];
                fa.total_cmp(&fb).then(a.cmp(&b))
            })
            .expect("at least one lane");
        load[lane] += c;
    }
    load.iter()
        .zip(&speedups)
        .map(|(&l, &s)| l / s)
        .fold(0.0, f64::max)
}

/// Curve-aware variant of [`plan_lanes`]: instead of classifying
/// hard/easy by the median-ratio cutoff and hardcoding the two round
/// shapes, it solves for the lane-width mix minimizing the predicted
/// makespan under the measured [`SpeedupCurve`], then LPT-packs the
/// queries (descending estimate) onto those lanes. One round, widths
/// partitioning the pool, every query named exactly once — the same
/// double-partition contract as the static planner, and bit-identical
/// answers to it (widths change scheduling, never results).
pub fn plan_lanes_adaptive(
    estimates: &[f64],
    pool: usize,
    config: &AdmissionConfig,
    curve: &SpeedupCurve,
) -> ConcurrentPlan {
    let pool = pool.max(1);
    if estimates.is_empty() {
        return ConcurrentPlan::default();
    }
    let mut order: Vec<usize> = (0..estimates.len()).collect();
    order.sort_by(|&a, &b| estimates[b].total_cmp(&estimates[a]).then(a.cmp(&b)));
    let costs_desc: Vec<f64> = order.iter().map(|&q| estimates[q]).collect();
    let widths = solve_widths(&costs_desc, pool, config, curve);
    let speedups: Vec<f64> = widths.iter().map(|&w| curve.speedup(w)).collect();
    let mut lanes: Vec<LaneSpec> = widths
        .iter()
        .map(|&width| LaneSpec {
            width,
            queries: Vec::new(),
        })
        .collect();
    let mut load = vec![0.0f64; widths.len()];
    for (&q, &c) in order.iter().zip(&costs_desc) {
        // The solver's own LPT rule, replayed to materialize the
        // assignment it scored (ties by queue length keep zero-estimate
        // batches round-robining, then by lane index).
        let lane = (0..widths.len())
            .min_by(|&a, &b| {
                let fa = (load[a] + c) / speedups[a];
                let fb = (load[b] + c) / speedups[b];
                fa.total_cmp(&fb)
                    .then(lanes[a].queries.len().cmp(&lanes[b].queries.len()))
                    .then(a.cmp(&b))
            })
            .expect("at least one lane");
        lanes[lane].queries.push(q);
        load[lane] += c;
    }
    // An empty lane fails the plan's double-partition validation; fold
    // surplus lanes away (possible when queries < lanes after the LPT
    // replay's queue-length tie-break — rare, but the contract is hard).
    lanes.retain(|l| !l.queries.is_empty());
    let missing = pool - lanes.iter().map(|l| l.width).sum::<usize>();
    if let Some(first) = lanes.first_mut() {
        first.width += missing;
    }
    let mut round = RoundSpec::new(lanes);
    round.readmission = config.readmission;
    ConcurrentPlan {
        rounds: vec![round],
    }
}

/// Curve-aware variant of [`plan_dispatch_widths`]: the solver picks
/// the makespan-optimal width mix for the observed estimate sample,
/// and every lane at the widest width claims hardest-first (dispatch
/// front) while strictly narrower lanes claim easiest-first. With a
/// uniform mix every lane claims hardest-first — the LPT order.
pub fn plan_dispatch_widths_adaptive(
    estimates: &[f64],
    pool: usize,
    config: &AdmissionConfig,
    curve: &SpeedupCurve,
) -> DispatchWidths {
    let pool = pool.max(1);
    if estimates.is_empty() {
        // No evidence yet: same cold-start shape as the static planner.
        return plan_dispatch_widths(estimates, pool, config);
    }
    let mut costs_desc: Vec<f64> = estimates.to_vec();
    costs_desc.sort_by(|a, b| b.total_cmp(a));
    let mut widths = solve_widths(&costs_desc, pool, config, curve);
    widths.sort_unstable_by(|a, b| b.cmp(a));
    let narrowest = *widths.last().expect("pool >= 1 gives a lane");
    let strictly_wide = widths.iter().filter(|&&w| w > narrowest).count();
    let wide_lanes = if strictly_wide == 0 {
        widths.len()
    } else {
        strictly_wide
    };
    DispatchWidths { widths, wide_lanes }
}

/// The admission controller: lane planning plus the per-query `TH`
/// prediction of the sigmoid model, bundled for the engine's callers.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmissionController {
    /// Lane-planning knobs.
    pub config: AdmissionConfig,
    /// Optional trained threshold model (Figure 6).
    pub threshold_model: Option<ThresholdModel>,
}

impl AdmissionController {
    /// A controller with the given knobs and no threshold model.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController {
            config,
            threshold_model: None,
        }
    }

    /// Installs a trained sigmoid threshold model.
    pub fn with_threshold_model(mut self, model: ThresholdModel) -> Self {
        self.threshold_model = Some(model);
        self
    }

    /// Plans lanes for a batch (see [`plan_lanes`]).
    pub fn plan(&self, estimates: &[f64], pool: usize) -> ConcurrentPlan {
        plan_lanes(estimates, pool, &self.config)
    }

    /// Per-query `TH` predictions from the initial BSFs, when a
    /// threshold model is installed.
    pub fn predict_ths(&self, initial_bsfs: &[f64]) -> Option<Vec<usize>> {
        let model = self.threshold_model.as_ref()?;
        Some(initial_bsfs.iter().map(|&b| model.predict_th(b)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_queries(plan: &ConcurrentPlan) -> Vec<usize> {
        let mut qs: Vec<usize> = plan
            .rounds
            .iter()
            .flat_map(|r| &r.lanes)
            .flat_map(|l| l.queries.iter().copied())
            .collect();
        qs.sort_unstable();
        qs
    }

    #[test]
    fn uniform_estimates_admit_everything_concurrently() {
        let est = vec![1.0; 12];
        let plan = plan_lanes(&est, 8, &AdmissionConfig::default());
        plan.validate(8, 12);
        assert_eq!(plan.rounds.len(), 1, "no hard tier");
        assert_eq!(plan.rounds[0].lanes.len(), 4, "8 threads / width 2");
        for lane in &plan.rounds[0].lanes {
            assert_eq!(lane.width, 2);
        }
    }

    #[test]
    fn hard_tail_gets_the_full_pool_first() {
        // Ten easy queries and two 100x outliers.
        let mut est = vec![1.0; 10];
        est.push(100.0);
        est.push(120.0);
        let plan = plan_lanes(&est, 4, &AdmissionConfig::default());
        plan.validate(4, 12);
        assert_eq!(plan.rounds.len(), 2);
        let hard = &plan.rounds[0].lanes;
        assert_eq!(hard.len(), 1);
        assert_eq!(hard[0].width, 4);
        assert_eq!(hard[0].queries, vec![11, 10], "descending estimate");
    }

    #[test]
    fn absolute_cutoff_overrides_ratio() {
        let est = vec![1.0, 2.0, 3.0, 4.0];
        let cfg = AdmissionConfig::default().with_hard_cutoff(2.5);
        let plan = plan_lanes(&est, 2, &cfg);
        plan.validate(2, 4);
        assert_eq!(plan.rounds[0].lanes[0].queries, vec![3, 2]);
    }

    #[test]
    fn lanes_never_outnumber_queries_or_cap() {
        let est = vec![1.0, 1.0];
        let plan = plan_lanes(&est, 8, &AdmissionConfig::default().with_easy_width(1));
        plan.validate(8, 2);
        assert_eq!(plan.rounds[0].lanes.len(), 2, "2 queries -> 2 lanes");
        let capped = plan_lanes(
            &[1.0; 16],
            8,
            &AdmissionConfig::default().with_easy_width(1).with_max_lanes(3),
        );
        capped.validate(8, 16);
        assert_eq!(capped.rounds[0].lanes.len(), 3);
    }

    #[test]
    fn every_query_is_planned_exactly_once() {
        let est: Vec<f64> = (0..37).map(|i| ((i * 13) % 11) as f64 + 1.0).collect();
        for pool in [1usize, 2, 5, 8] {
            for w in [1usize, 2, 3] {
                let plan = plan_lanes(&est, pool, &AdmissionConfig::default().with_easy_width(w));
                plan.validate(pool, est.len());
                assert_eq!(flat_queries(&plan), (0..est.len()).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn lpt_balances_easy_lanes() {
        // Eight easy queries with skewed costs on 4 single-width lanes:
        // greedy assignment keeps the max lane load below a naive
        // round-robin's.
        let est = vec![8.0, 1.0, 1.0, 1.0, 7.0, 1.0, 1.0, 6.0];
        let cfg = AdmissionConfig::default()
            .with_easy_width(1)
            .with_hard_ratio(100.0);
        let plan = plan_lanes(&est, 4, &cfg);
        plan.validate(4, 8);
        let loads: Vec<f64> = plan.rounds[0]
            .lanes
            .iter()
            .map(|l| l.queries.iter().map(|&q| est[q]).sum())
            .collect();
        let max_load = loads.iter().cloned().fold(0.0, f64::max);
        assert!(max_load <= 9.0, "LPT keeps lanes balanced: {loads:?}");
    }

    #[test]
    fn controller_predicts_per_query_ths() {
        use crate::sigmoid::SigmoidFit;
        let s = SigmoidFit {
            m: 160.0,
            big_m: 160.0,
            b: 1.0,
            c: 1.0,
            d: 0.0,
            sse: 0.0,
        };
        let ctl = AdmissionController::default()
            .with_threshold_model(ThresholdModel::new(s, 16.0));
        assert_eq!(ctl.predict_ths(&[1.0, 2.0]), Some(vec![10, 10]));
        assert_eq!(AdmissionController::default().predict_ths(&[1.0]), None);
    }

    #[test]
    fn empty_batch_plans_empty() {
        let plan = plan_lanes(&[], 4, &AdmissionConfig::default());
        assert!(plan.rounds.is_empty());
        plan.validate(4, 0);
    }

    #[test]
    fn dispatch_widths_partition_the_pool() {
        let samples: [&[f64]; 4] = [
            &[],
            &[1.0, 1.0, 1.0],
            &[1.0, 1.0, 50.0],
            &[50.0, 60.0, 70.0],
        ];
        for pool in 1..=9usize {
            for est in samples {
                for w in [1usize, 2, 3] {
                    let cfg = AdmissionConfig::default().with_easy_width(w);
                    let dw = plan_dispatch_widths(est, pool, &cfg);
                    assert_eq!(dw.widths.iter().sum::<usize>(), pool, "{est:?} pool={pool} w={w}");
                    assert!(dw.widths.iter().all(|&x| x >= 1));
                    assert!(dw.wide_lanes <= dw.widths.len());
                }
            }
        }
    }

    #[test]
    fn dispatch_all_easy_is_all_narrow() {
        let dw = plan_dispatch_widths(&[1.0; 6], 8, &AdmissionConfig::default());
        assert_eq!(dw, DispatchWidths { widths: vec![2, 2, 2, 2], wide_lanes: 0 });
        // No history behaves as all-easy.
        let cold = plan_dispatch_widths(&[], 8, &AdmissionConfig::default());
        assert_eq!(cold.wide_lanes, 0);
    }

    #[test]
    fn dispatch_mixed_splits_wide_head_narrow_tail() {
        let mut est = vec![1.0; 8];
        est.push(100.0);
        let dw = plan_dispatch_widths(&est, 8, &AdmissionConfig::default());
        assert_eq!(dw, DispatchWidths { widths: vec![4, 2, 2], wide_lanes: 1 });
        // A 2-thread pool can't split against easy_width 2: all wide.
        let tiny = plan_dispatch_widths(&est, 2, &AdmissionConfig::default());
        assert_eq!(tiny, DispatchWidths { widths: vec![2], wide_lanes: 1 });
    }

    #[test]
    fn dispatch_all_hard_is_one_full_pool_lane() {
        let cfg = AdmissionConfig::default().with_hard_cutoff(0.5);
        let dw = plan_dispatch_widths(&[1.0, 2.0, 3.0], 6, &cfg);
        assert_eq!(dw, DispatchWidths { widths: vec![6], wide_lanes: 1 });
    }

    #[test]
    fn solver_prefers_narrow_lanes_on_a_saturating_curve() {
        // Speedup saturates hard past width 2: splitting the pool into
        // narrow lanes beats one wide lane for a uniform batch.
        let curve = SpeedupCurve::from_times(&[(1, 8.0), (2, 4.4), (4, 4.0), (8, 3.9)]);
        let est = vec![1.0; 16];
        let dw =
            plan_dispatch_widths_adaptive(&est, 8, &AdmissionConfig::default(), &curve);
        assert_eq!(dw.widths.iter().sum::<usize>(), 8);
        assert!(
            dw.widths.iter().all(|&w| w <= 2),
            "saturating curve should split: {:?}",
            dw.widths
        );
    }

    #[test]
    fn solver_keeps_the_pool_together_on_a_linear_curve_single_query() {
        let curve = SpeedupCurve::linear();
        let dw = plan_dispatch_widths_adaptive(&[10.0], 8, &AdmissionConfig::default(), &curve);
        assert_eq!(dw, DispatchWidths { widths: vec![8], wide_lanes: 1 });
    }

    #[test]
    fn solver_mixes_widths_for_a_skewed_batch() {
        // One dominant query plus many small ones on a sub-linear curve:
        // the best mix keeps a wide lane for the outlier and narrow
        // lanes for the rest.
        let curve = SpeedupCurve::from_times(&[(1, 8.0), (2, 4.2), (4, 2.6), (8, 2.2)]);
        let mut est = vec![1.0; 12];
        est.push(8.0);
        let dw = plan_dispatch_widths_adaptive(&est, 8, &AdmissionConfig::default(), &curve);
        assert_eq!(dw.widths.iter().sum::<usize>(), 8);
        assert!(dw.widths.len() > 1, "skew should split: {:?}", dw.widths);
        assert!(dw.widths[0] > *dw.widths.last().unwrap(), "wide head");
        assert!(dw.wide_lanes >= 1 && dw.wide_lanes < dw.widths.len());
    }

    #[test]
    fn solver_makespan_never_worse_than_static_shapes() {
        let curve = SpeedupCurve::from_times(&[(1, 8.0), (2, 4.4), (4, 3.2), (8, 3.0)]);
        let cases: [&[f64]; 3] = [&[1.0; 10], &[5.0, 1.0, 1.0, 1.0, 1.0, 1.0], &[9.0, 8.0, 7.0]];
        for est in cases {
            let mut desc: Vec<f64> = est.to_vec();
            desc.sort_by(|a, b| b.total_cmp(a));
            let cfg = AdmissionConfig::default();
            let solved = plan_dispatch_widths_adaptive(est, 8, &cfg, &curve);
            let solved_ms = predicted_makespan(&desc, &solved.widths, &curve);
            let static_dw = plan_dispatch_widths(est, 8, &cfg);
            let static_ms = predicted_makespan(&desc, &static_dw.widths, &curve);
            assert!(
                solved_ms <= static_ms + 1e-9,
                "{est:?}: solved {solved_ms} vs static {static_ms}"
            );
        }
    }

    #[test]
    fn adaptive_plan_double_partitions() {
        let curve = SpeedupCurve::from_times(&[(1, 8.0), (2, 4.4), (4, 3.2), (8, 3.0)]);
        let est: Vec<f64> = (0..23).map(|i| ((i * 7) % 13) as f64 + 0.5).collect();
        for pool in [1usize, 2, 3, 4, 8] {
            let plan = plan_lanes_adaptive(&est, pool, &AdmissionConfig::default(), &curve);
            plan.validate(pool, est.len());
            assert_eq!(flat_queries(&plan), (0..est.len()).collect::<Vec<_>>());
            assert_eq!(plan.rounds.len(), 1, "one adaptive round");
        }
    }

    #[test]
    fn adaptive_plan_is_deterministic() {
        let curve = SpeedupCurve::from_times(&[(1, 9.0), (2, 5.0), (4, 3.1), (8, 2.8)]);
        let est: Vec<f64> = (0..17).map(|i| ((i * 5) % 7) as f64 + 1.0).collect();
        let a = plan_lanes_adaptive(&est, 8, &AdmissionConfig::default(), &curve);
        let b = plan_lanes_adaptive(&est, 8, &AdmissionConfig::default(), &curve);
        let shape = |p: &ConcurrentPlan| -> Vec<(usize, Vec<usize>)> {
            p.rounds[0]
                .lanes
                .iter()
                .map(|l| (l.width, l.queries.clone()))
                .collect()
        };
        assert_eq!(shape(&a), shape(&b));
    }

    #[test]
    fn adaptive_empty_and_tiny_batches() {
        let curve = SpeedupCurve::linear();
        let empty = plan_lanes_adaptive(&[], 4, &AdmissionConfig::default(), &curve);
        assert!(empty.rounds.is_empty());
        let one = plan_lanes_adaptive(&[3.0], 4, &AdmissionConfig::default(), &curve);
        one.validate(4, 1);
        assert_eq!(one.rounds[0].lanes.len(), 1);
        assert_eq!(one.rounds[0].lanes[0].width, 4, "lone query gets the pool");
    }

    #[test]
    fn max_lanes_caps_the_solver() {
        let curve = SpeedupCurve::from_times(&[(1, 8.0), (2, 4.4), (4, 4.2), (8, 4.1)]);
        let cfg = AdmissionConfig::default().with_easy_width(1).with_max_lanes(2);
        let dw = plan_dispatch_widths_adaptive(&[1.0; 12], 8, &cfg, &curve);
        assert!(dw.widths.len() <= 2, "{:?}", dw.widths);
        assert_eq!(dw.widths.iter().sum::<usize>(), 8);
    }
}
