//! Per-query execution-cost prediction.
//!
//! The scheduler needs "a (good-enough) estimation of the execution time
//! of each query". Odyssey derives it from the *initial BSF* — the
//! approximate-search answer computed before the full search — via the
//! linear regression of Figure 4.

use crate::linreg::LinearRegression;

/// Anything that maps a query feature (initial BSF) to an estimated cost.
pub trait CostModel: Send + Sync {
    /// Estimated execution cost (arbitrary but consistent units; the
    /// schedulers only compare and sum estimates).
    fn estimate(&self, initial_bsf: f64) -> f64;
}

/// The trained regression-based predictor used by the PREDICT-* policies.
#[derive(Debug, Clone, Copy)]
pub struct QueryCostPredictor {
    model: LinearRegression,
}

impl QueryCostPredictor {
    /// Trains from per-query `(initial BSF, measured execution seconds)`
    /// observations gathered on a training workload.
    pub fn train(initial_bsfs: &[f64], exec_times: &[f64]) -> Self {
        QueryCostPredictor {
            model: LinearRegression::fit(initial_bsfs, exec_times),
        }
    }

    /// Builds a predictor from an existing regression (e.g. loaded from a
    /// prior profiling run).
    pub fn from_regression(model: LinearRegression) -> Self {
        QueryCostPredictor { model }
    }

    /// The underlying regression (slope, intercept, R²) — what the
    /// Figure 4 harness reports.
    pub fn regression(&self) -> &LinearRegression {
        &self.model
    }
}

impl CostModel for QueryCostPredictor {
    fn estimate(&self, initial_bsf: f64) -> f64 {
        // Estimates feed load sums; clamp so a far-below-the-line BSF
        // cannot produce a negative load.
        self.model.predict(initial_bsf).max(0.0)
    }
}

/// A trivial model assigning every query the same cost — this makes the
/// PREDICT-* policies degenerate into their unpredicted counterparts and
/// serves as an ablation control.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnitCost;

impl CostModel for UnitCost {
    fn estimate(&self, _initial_bsf: f64) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trained_predictor_orders_queries_correctly() {
        // Training data with a positive BSF/time relationship.
        let bsfs = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let times = vec![1.1, 2.0, 2.9, 4.2, 5.0];
        let p = QueryCostPredictor::train(&bsfs, &times);
        assert!(p.estimate(5.0) > p.estimate(1.0));
        assert!(p.regression().r2 > 0.95);
    }

    #[test]
    fn estimates_are_never_negative() {
        let bsfs = vec![10.0, 20.0];
        let times = vec![1.0, 2.0];
        let p = QueryCostPredictor::train(&bsfs, &times);
        assert!(p.estimate(0.0) >= 0.0);
        assert!(p.estimate(-100.0) >= 0.0);
    }

    #[test]
    fn unit_cost_is_flat() {
        assert_eq!(UnitCost.estimate(1.0), UnitCost.estimate(1e9));
    }
}
