//! # Odyssey
//!
//! A distributed data-series similarity-search framework, reproducing
//! *"Odyssey: A Journey in the Land of Distributed Data Series Similarity
//! Search"* (PVLDB 2023).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] — the iSAX index and Odyssey's single-node parallel exact
//!   search (RS-batches, bounded priority queues, shared BSF).
//! * [`sched`] — query execution-time prediction (linear regression on the
//!   initial BSF) and the five scheduling policies.
//! * [`partition`] — EQUALLY-SPLIT, RANDOM-SHUFFLE and the Gray-code-based
//!   DENSITY-AWARE data partitioning.
//! * [`cluster`] — the multi-node runtime: replication groups (PARTIAL-k),
//!   dynamic scheduling, BSF sharing, and data-free work-stealing.
//! * [`baselines`] — the competitors: DMESSI, DMESSI-SW-BSF, DPiSAX.
//! * [`workloads`] — synthetic stand-ins for the paper's datasets and
//!   query workloads.
//!
//! ## Example
//!
//! ```
//! use odyssey::cluster::{ClusterConfig, OdysseyCluster, Replication, SchedulerKind};
//! use odyssey::workloads::generator::random_walk;
//!
//! let data = random_walk(2_000, 64, 42);
//! let queries = random_walk(8, 64, 7);
//! let cfg = ClusterConfig::new(4)
//!     .with_replication(Replication::Partial(2))
//!     .with_scheduler(SchedulerKind::PredictDn)
//!     .with_threads_per_node(2);
//! let cluster = OdysseyCluster::build(&data, cfg);
//! let report = cluster.answer_batch(&queries);
//! assert_eq!(report.answers.len(), 8);
//! ```

pub use odyssey_baselines as baselines;
pub use odyssey_cluster as cluster;
pub use odyssey_core as core;
pub use odyssey_partition as partition;
pub use odyssey_sched as sched;
pub use odyssey_workloads as workloads;
